//! # esync-metrics — always-on metrics and online invariant watchdogs
//!
//! The *online* half of the observability story. Where `esync-trace`
//! answers "where did each decision's latency go?" after the fact, this
//! crate judges a run **while it executes**:
//!
//! * **Registry** — protocols bump the allocation-free counter registry
//!   ([`Metric`], [`MetricSet`], defined in `esync-core` because the
//!   `Outbox` owns the passive set) through the same sans-IO side
//!   channel as tracing; [`Registry`] is the atomic cross-thread
//!   aggregation the threaded runtime folds its per-node counters into.
//! * **Snapshots** — drivers sample the registry on a fixed cadence into
//!   [`MetricsSnapshot`] time series (sim time on the simulator, wall
//!   time since cluster start on the runtime), shipped home like traces
//!   and embedded in workload artifacts as schema v7's `health` section
//!   ([`HealthSummary`]).
//! * **Watchdogs** — [`Watchdogs`] evaluates online invariants on the
//!   snapshot cadence: the live per-decision bound monitor (the paper's
//!   `TS + ε + 3τ + 5δ`, checked the moment a decision commits), the
//!   anchor-churn detector, the stall detector, and the shard-imbalance
//!   watch reusing the rebalance trigger's load ratios.
//! * **`HEALTH_*.jsonl`** — a documented JSONL export ([`jsonl`]) with a
//!   hand-rolled parser (the vendored offline `serde_json` serializes
//!   only), rendered into a cluster-status report ([`render_report`])
//!   by `crates/check`'s `health_check` binary.
//!
//! The latency histogram machinery the registry's future gauges summarize
//! with lives in `esync-trace` ([`LatencyHistogram`], [`HistogramSummary`]
//! — re-exported here so metrics consumers need only this crate).
//!
//! Disabled runs are bit-identical to unmetered ones, seed for seed, on
//! both backends — asserted by tier-1 `tests/metrics_smoke.rs`, the same
//! contract `trace_smoke` pins for tracing.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod health;
pub mod jsonl;
mod registry;
mod report;
mod snapshot;
mod watchdog;

pub use esync_core::metrics::{Metric, MetricSet, METRIC_COUNT};
pub use esync_trace::{HistogramSummary, LatencyHistogram};
pub use health::HealthSummary;
pub use jsonl::{
    firing_line, health_meta_line, parse_health_jsonl, parse_health_line, snapshot_line,
    write_health_jsonl, HealthLine, HealthMeta, HealthParseError,
};
pub use registry::Registry;
pub use report::render_report;
pub use snapshot::MetricsSnapshot;
pub use watchdog::{
    imbalance_x1000, BoundSpec, WatchdogConfig, WatchdogFiring, WatchdogKind, Watchdogs,
};
