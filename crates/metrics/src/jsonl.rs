//! The `HEALTH_*.jsonl` artifact format.
//!
//! One JSON object per line, mirroring the `TRACE_*.jsonl` layout:
//!
//! | line | shape |
//! |------|-------|
//! | header | `{"meta":{"exp":…,"seed":…,"n":…,"interval_ns":…,"backend":"sim"\|"rt"}}` |
//! | snapshot | `{"at_ns":…,"node":…\|null,"counters":[["1a_sent",v],…]}` |
//! | firing | `{"at_ns":…,"node":…\|null,"watchdog":"bound"\|…,"value":…}` |
//!
//! Snapshot `counters` always carries all [`METRIC_COUNT`] pairs in
//! [`Metric::ALL`] order; the parser accepts any order and subset (a
//! missing name reads as zero), so the format can grow counters without
//! breaking old readers. Firing lines are distinguished from snapshot
//! lines by the `watchdog` key.
//!
//! The vendored offline `serde_json` serializes only, so parsing is a
//! hand-rolled scanner — unlike the trace parser, this one understands
//! arrays (for `counters`) and `null` (for cluster-wide `node`).

use crate::snapshot::MetricsSnapshot;
use crate::watchdog::{WatchdogFiring, WatchdogKind};
use esync_core::metrics::{Metric, METRIC_COUNT};
use serde::{Serialize, Serializer};
use std::fmt;

/// The run header of a `HEALTH_*.jsonl` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthMeta {
    /// Experiment label (e.g. `"w6_health"`).
    pub exp: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Cluster size.
    pub n: u32,
    /// Snapshot cadence in nanoseconds.
    pub interval_ns: u64,
    /// Which backend stamped the time axis: `"sim"` (virtual time) or
    /// `"rt"` (monotonic wall time since cluster start).
    pub backend: String,
}

/// One parsed line of a health file.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthLine {
    /// The header line.
    Meta(HealthMeta),
    /// A registry sample.
    Snapshot(MetricsSnapshot),
    /// A watchdog firing.
    Firing(WatchdogFiring),
}

/// A malformed health line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthParseError {
    /// What the parser was looking for.
    pub what: &'static str,
    /// Byte offset within the line.
    pub at: usize,
}

impl fmt::Display for HealthParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid health line: expected {} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for HealthParseError {}

/// Renders the header line (no trailing newline) — the first line a
/// streaming writer appends.
pub fn health_meta_line(meta: &HealthMeta) -> String {
    meta_line(meta)
}

/// Renders one snapshot line (no trailing newline), for writers that
/// append live in arrival order.
pub fn snapshot_line(snap: &MetricsSnapshot) -> String {
    let mut s = Serializer::new();
    snap.serialize(&mut s);
    s.finish()
}

/// Renders one firing line (no trailing newline), for writers that
/// append live in arrival order.
pub fn firing_line(f: &WatchdogFiring) -> String {
    let mut s = Serializer::new();
    f.serialize(&mut s);
    s.finish()
}

fn meta_line(meta: &HealthMeta) -> String {
    let mut s = Serializer::new();
    s.begin_map();
    s.key("meta");
    s.begin_map();
    s.key("exp");
    s.value_str(&meta.exp);
    s.key("seed");
    s.value_u64(meta.seed);
    s.key("n");
    s.value_u64(u64::from(meta.n));
    s.key("interval_ns");
    s.value_u64(meta.interval_ns);
    s.key("backend");
    s.value_str(&meta.backend);
    s.end_map();
    s.end_map();
    s.finish()
}

/// Renders a whole health file: the header, then every snapshot, then
/// every firing, one JSON object per line with a trailing newline.
/// Writers that interleave live (the runtime's `--follow` stream) emit
/// the same line shapes in arrival order instead; the parser accepts
/// both.
pub fn write_health_jsonl(
    meta: &HealthMeta,
    snapshots: &[MetricsSnapshot],
    firings: &[WatchdogFiring],
) -> String {
    let mut out = meta_line(meta);
    out.push('\n');
    for snap in snapshots {
        let mut s = Serializer::new();
        snap.serialize(&mut s);
        out.push_str(&s.finish());
        out.push('\n');
    }
    for f in firings {
        let mut s = Serializer::new();
        f.serialize(&mut s);
        out.push_str(&s.finish());
        out.push('\n');
    }
    out
}

// ---- parsing (hand-rolled: the vendored serde_json cannot parse) ----

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Str(String),
    Obj(Vec<(String, Val)>),
    Arr(Vec<Val>),
    Null,
}

struct Scanner<'a> {
    s: &'a [u8],
    at: usize,
}

impl Scanner<'_> {
    fn err<T>(&self, what: &'static str) -> Result<T, HealthParseError> {
        Err(HealthParseError { what, at: self.at })
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.at += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), HealthParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn string(&mut self) -> Result<String, HealthParseError> {
        self.expect(b'"', "string")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    _ => return self.err("escape"),
                },
                Some(b) => out.push(b as char),
                None => return self.err("closing quote"),
            }
        }
    }

    fn number(&mut self) -> Result<u64, HealthParseError> {
        let start = self.at;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == start {
            return self.err("number");
        }
        std::str::from_utf8(&self.s[start..self.at])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or(HealthParseError {
                what: "u64 in range",
                at: start,
            })
    }

    fn value(&mut self) -> Result<Val, HealthParseError> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'{') => Ok(Val::Obj(self.object()?)),
            Some(b'[') => Ok(Val::Arr(self.array()?)),
            Some(b'n') => {
                if self.s[self.at..].starts_with(b"null") {
                    self.at += 4;
                    Ok(Val::Null)
                } else {
                    self.err("null")
                }
            }
            Some(b) if b.is_ascii_digit() => Ok(Val::Num(self.number()?)),
            _ => self.err("value"),
        }
    }

    fn array(&mut self) -> Result<Vec<Val>, HealthParseError> {
        self.expect(b'[', "array")?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(items);
        }
        loop {
            items.push(self.value()?);
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(items),
                _ => return self.err("comma or closing bracket"),
            }
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Val)>, HealthParseError> {
        self.expect(b'{', "object")?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':', "colon")?;
            fields.push((key, self.value()?));
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(fields),
                _ => return self.err("comma or closing brace"),
            }
        }
    }
}

fn get<'v>(fields: &'v [(String, Val)], key: &'static str) -> Result<&'v Val, HealthParseError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or(HealthParseError { what: key, at: 0 })
}

fn get_u64(fields: &[(String, Val)], key: &'static str) -> Result<u64, HealthParseError> {
    match get(fields, key)? {
        Val::Num(n) => Ok(*n),
        _ => Err(HealthParseError { what: key, at: 0 }),
    }
}

fn get_str<'v>(fields: &'v [(String, Val)], key: &'static str) -> Result<&'v str, HealthParseError> {
    match get(fields, key)? {
        Val::Str(s) => Ok(s),
        _ => Err(HealthParseError { what: key, at: 0 }),
    }
}

fn get_node(fields: &[(String, Val)]) -> Result<Option<u32>, HealthParseError> {
    match get(fields, "node")? {
        Val::Null => Ok(None),
        Val::Num(n) => u32::try_from(*n)
            .map(Some)
            .map_err(|_| HealthParseError { what: "node", at: 0 }),
        _ => Err(HealthParseError { what: "node", at: 0 }),
    }
}

fn counters_of(val: &Val) -> Result<[u64; METRIC_COUNT], HealthParseError> {
    let Val::Arr(pairs) = val else {
        return Err(HealthParseError { what: "counters", at: 0 });
    };
    let mut counters = [0u64; METRIC_COUNT];
    for pair in pairs {
        let Val::Arr(kv) = pair else {
            return Err(HealthParseError { what: "counter pair", at: 0 });
        };
        let [Val::Str(name), Val::Num(v)] = kv.as_slice() else {
            return Err(HealthParseError { what: "counter pair", at: 0 });
        };
        // Unknown names are skipped, so old readers survive new counters.
        if let Some(m) = Metric::ALL.into_iter().find(|m| m.name() == name) {
            counters[m as usize] = *v;
        }
    }
    Ok(counters)
}

/// Parses one line of a health file.
///
/// # Errors
///
/// Returns [`HealthParseError`] for malformed JSON, unknown watchdog
/// names, or missing fields.
pub fn parse_health_line(line: &str) -> Result<HealthLine, HealthParseError> {
    let mut sc = Scanner {
        s: line.trim_end().as_bytes(),
        at: 0,
    };
    let fields = sc.object()?;
    if sc.at != sc.s.len() {
        return sc.err("end of line");
    }
    if let Ok(Val::Obj(meta)) = get(&fields, "meta").cloned() {
        return Ok(HealthLine::Meta(HealthMeta {
            exp: get_str(&meta, "exp")?.to_string(),
            seed: get_u64(&meta, "seed")?,
            n: u32::try_from(get_u64(&meta, "n")?)
                .map_err(|_| HealthParseError { what: "n", at: 0 })?,
            interval_ns: get_u64(&meta, "interval_ns")?,
            backend: get_str(&meta, "backend")?.to_string(),
        }));
    }
    let at_ns = get_u64(&fields, "at_ns")?;
    let node = get_node(&fields)?;
    if let Ok(name) = get_str(&fields, "watchdog") {
        let kind = WatchdogKind::from_name(name)
            .ok_or(HealthParseError { what: "known watchdog", at: 0 })?;
        return Ok(HealthLine::Firing(WatchdogFiring {
            kind,
            at_ns,
            node,
            value: get_u64(&fields, "value")?,
        }));
    }
    Ok(HealthLine::Snapshot(MetricsSnapshot {
        at_ns,
        node,
        counters: counters_of(get(&fields, "counters")?)?,
    }))
}

/// Parses a whole health file into its header, snapshot series, and
/// firing list, in file order (blank lines skipped).
///
/// # Errors
///
/// Returns [`HealthParseError`] on the first malformed line, or a
/// `"meta line"` error if the header is missing.
pub fn parse_health_jsonl(
    text: &str,
) -> Result<(HealthMeta, Vec<MetricsSnapshot>, Vec<WatchdogFiring>), HealthParseError> {
    let mut meta = None;
    let mut snapshots = Vec::new();
    let mut firings = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_health_line(line)? {
            HealthLine::Meta(m) => meta = Some(m),
            HealthLine::Snapshot(s) => snapshots.push(s),
            HealthLine::Firing(f) => firings.push(f),
        }
    }
    let meta = meta.ok_or(HealthParseError { what: "meta line", at: 0 })?;
    Ok((meta, snapshots, firings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> HealthMeta {
        HealthMeta {
            exp: "w6_health".to_string(),
            seed: 42,
            n: 3,
            interval_ns: 500_000_000,
            backend: "sim".to_string(),
        }
    }

    #[test]
    fn roundtrips_a_full_file() {
        let mut counters = [0u64; METRIC_COUNT];
        counters[Metric::Decided as usize] = 11;
        counters[Metric::Submitted as usize] = 12;
        let snapshots = vec![
            MetricsSnapshot { at_ns: 500, node: None, counters: [0; METRIC_COUNT] },
            MetricsSnapshot { at_ns: 1000, node: Some(2), counters },
        ];
        let firings = vec![WatchdogFiring {
            kind: WatchdogKind::AnchorChurn,
            at_ns: 1000,
            node: None,
            value: 2,
        }];
        let text = write_health_jsonl(&sample_meta(), &snapshots, &firings);
        let (meta, s2, f2) = parse_health_jsonl(&text).expect("roundtrip parses");
        assert_eq!(meta, sample_meta());
        assert_eq!(s2, snapshots);
        assert_eq!(f2, firings);
    }

    #[test]
    fn missing_counter_names_read_as_zero() {
        let line = "{\"at_ns\":7,\"node\":null,\"counters\":[[\"decided\",3],[\"future_counter\",9]]}";
        let HealthLine::Snapshot(s) = parse_health_line(line).expect("parses") else {
            panic!("expected a snapshot line");
        };
        assert_eq!(s.counter(Metric::Decided), 3);
        assert_eq!(s.counter(Metric::Chosen), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_health_line("{\"at_ns\":1").is_err());
        assert!(parse_health_line("{\"at_ns\":1,\"node\":0,\"watchdog\":\"nope\",\"value\":1}").is_err());
        assert!(parse_health_jsonl("{\"at_ns\":1,\"node\":null,\"counters\":[]}\n").is_err());
    }
}
