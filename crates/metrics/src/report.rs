//! Text rendering of a health file into a cluster-status report.

use crate::jsonl::HealthMeta;
use crate::snapshot::MetricsSnapshot;
use crate::watchdog::{WatchdogFiring, WatchdogKind};
use esync_core::metrics::{Metric, METRIC_COUNT};
use std::fmt::Write as _;

/// Cluster totals at the end of the series: the last snapshot per node
/// (a counter is monotonic, so "last" is "final"), summed. A sim series
/// has one `None` node and this is just its last sample.
fn final_counters(snapshots: &[MetricsSnapshot]) -> [u64; METRIC_COUNT] {
    let mut last: Vec<(Option<u32>, &MetricsSnapshot)> = Vec::new();
    for s in snapshots {
        match last.iter_mut().find(|(node, _)| *node == s.node) {
            Some((_, slot)) if slot.at_ns <= s.at_ns => *slot = s,
            Some(_) => {}
            None => last.push((s.node, s)),
        }
    }
    let mut totals = [0u64; METRIC_COUNT];
    for (_, s) in last {
        for (t, c) in totals.iter_mut().zip(s.counters.iter()) {
            *t += c;
        }
    }
    totals
}

/// Renders a human-readable cluster-status report from a parsed health
/// file: run identity, snapshot coverage, an overall verdict (healthy
/// iff no watchdog fired), final cluster-wide counters, and a per-
/// watchdog firing table. Deterministic for a given input — the sim's
/// report is as reproducible as the run it describes.
pub fn render_report(
    meta: &HealthMeta,
    snapshots: &[MetricsSnapshot],
    firings: &[WatchdogFiring],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster health — {} (seed {}, n {}, backend {})",
        meta.exp, meta.seed, meta.n, meta.backend
    );
    let span_ns = snapshots.last().map_or(0, |s| s.at_ns);
    let mut nodes: Vec<Option<u32>> = Vec::new();
    for s in snapshots {
        if !nodes.contains(&s.node) {
            nodes.push(s.node);
        }
    }
    let _ = writeln!(
        out,
        "snapshots: {} every {:.3}s across {} stream(s), spanning {:.3}s",
        snapshots.len(),
        meta.interval_ns as f64 / 1e9,
        nodes.len().max(1),
        span_ns as f64 / 1e9,
    );
    let verdict = if firings.is_empty() { "HEALTHY" } else { "DEGRADED" };
    let _ = writeln!(out, "status: {verdict} ({} watchdog firings)", firings.len());
    let totals = final_counters(snapshots);
    out.push_str("final counters:\n");
    for m in Metric::ALL {
        let v = totals[m as usize];
        if v > 0 {
            let _ = writeln!(out, "  {:<14} {v}", m.name());
        }
    }
    let decided = totals[Metric::Decided as usize];
    if span_ns > 0 && decided > 0 {
        let _ = writeln!(
            out,
            "throughput: {:.1} decided/s",
            decided as f64 / (span_ns as f64 / 1e9)
        );
    }
    out.push_str("watchdogs:\n");
    for kind in WatchdogKind::ALL {
        let of_kind: Vec<&WatchdogFiring> = firings.iter().filter(|f| f.kind == kind).collect();
        match of_kind.last() {
            None => {
                let _ = writeln!(out, "  {:<14} ok", kind.name());
            }
            Some(last) => {
                let _ = writeln!(
                    out,
                    "  {:<14} {} firing(s), last at {:.3}s (value {})",
                    kind.name(),
                    of_kind.len(),
                    last.at_ns as f64 / 1e9,
                    last.value,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_verdict_and_tables() {
        let meta = HealthMeta {
            exp: "w6_health".to_string(),
            seed: 1,
            n: 3,
            interval_ns: 1_000_000_000,
            backend: "sim".to_string(),
        };
        let mut counters = [0u64; METRIC_COUNT];
        counters[Metric::Decided as usize] = 60;
        let snapshots = vec![
            MetricsSnapshot { at_ns: 1_000_000_000, node: None, counters: [0; METRIC_COUNT] },
            MetricsSnapshot { at_ns: 2_000_000_000, node: None, counters },
        ];
        let clean = render_report(&meta, &snapshots, &[]);
        assert!(clean.contains("status: HEALTHY (0 watchdog firings)"));
        assert!(clean.contains("decided        60"));
        assert!(clean.contains("throughput: 30.0 decided/s"));
        assert!(clean.contains("bound          ok"));

        let firings = vec![WatchdogFiring {
            kind: WatchdogKind::Stall,
            at_ns: 2_000_000_000,
            node: None,
            value: 4,
        }];
        let bad = render_report(&meta, &snapshots, &firings);
        assert!(bad.contains("status: DEGRADED (1 watchdog firings)"));
        assert!(bad.contains("stall          1 firing(s), last at 2.000s (value 4)"));
    }

    #[test]
    fn sums_final_counters_across_nodes() {
        let mut a = [0u64; METRIC_COUNT];
        a[Metric::Submitted as usize] = 5;
        let mut b = [0u64; METRIC_COUNT];
        b[Metric::Submitted as usize] = 7;
        let snapshots = vec![
            MetricsSnapshot { at_ns: 10, node: Some(0), counters: [0; METRIC_COUNT] },
            MetricsSnapshot { at_ns: 20, node: Some(0), counters: a },
            MetricsSnapshot { at_ns: 20, node: Some(1), counters: b },
        ];
        assert_eq!(final_counters(&snapshots)[Metric::Submitted as usize], 12);
    }
}
