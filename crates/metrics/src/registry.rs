//! The atomic cross-thread counter registry.

use esync_core::metrics::{Metric, METRIC_COUNT};
use std::sync::atomic::{AtomicU64, Ordering};

/// An allocation-free registry of atomic counters, one per [`Metric`].
///
/// The passive per-outbox [`MetricSet`](esync_core::metrics::MetricSet)
/// is plain `u64`s because an outbox is single-threaded; this is where
/// the threaded runtime's per-node counters meet: each node folds the
/// *delta* since its last snapshot into a shared `Registry`
/// (`accumulate`), so the cluster owner can read a live cluster-wide
/// view at any instant without stopping a node. All operations are
/// relaxed — counters are monotonic statistics, not synchronization.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; METRIC_COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An all-zero registry.
    pub fn new() -> Self {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds `n` to counter `m`.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        self.counters[m as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// The current value of counter `m`.
    #[inline]
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize].load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter, in [`Metric::ALL`] order.
    pub fn load_all(&self) -> [u64; METRIC_COUNT] {
        std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// Folds one node's progress into the registry: adds `cur - prev`
    /// per counter and advances `prev` to `cur`. Each node keeps its own
    /// `prev` array, so concurrent nodes accumulate without ever
    /// double-counting.
    pub fn accumulate(&self, prev: &mut [u64; METRIC_COUNT], cur: &[u64; METRIC_COUNT]) {
        for (i, (p, c)) in prev.iter_mut().zip(cur.iter()).enumerate() {
            let delta = c.saturating_sub(*p);
            if delta > 0 {
                self.counters[i].fetch_add(delta, Ordering::Relaxed);
            }
            *p = *c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let r = Registry::new();
        r.add(Metric::Decided, 3);
        r.add(Metric::Decided, 2);
        assert_eq!(r.get(Metric::Decided), 5);
        assert_eq!(r.get(Metric::Chosen), 0);
    }

    #[test]
    fn accumulate_folds_deltas_once() {
        let r = Registry::new();
        let mut prev = [0u64; METRIC_COUNT];
        let mut cur = [0u64; METRIC_COUNT];
        cur[Metric::Chosen as usize] = 4;
        r.accumulate(&mut prev, &cur);
        // Same node reports again with no progress: nothing double-counts.
        r.accumulate(&mut prev, &cur);
        cur[Metric::Chosen as usize] = 9;
        r.accumulate(&mut prev, &cur);
        assert_eq!(r.get(Metric::Chosen), 9);
        assert_eq!(r.load_all()[Metric::Chosen as usize], 9);
    }

    #[test]
    fn shared_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.add(Metric::Submitted, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.get(Metric::Submitted), 4000);
    }
}
