//! Idealized oracles for the baselines.
//!
//! Two of the implemented algorithms assume services the paper treats as
//! given:
//!
//! * **Traditional Paxos** (§2) "assumes a leader-election procedure …
//!   guaranteed to choose a unique, nonfaulty leader within O(δ) seconds
//!   after the system is stable". [`LeaderOracle`] provides exactly that:
//!   at `TS + announce_after` it announces the lowest-id live process to
//!   everyone (and to every process that restarts later).
//! * **Original B-Consensus** (§5) assumes a weak-ordering oracle.
//!   [`plan_wab_delivery`] implements the idealized version: once stable,
//!   a w-broadcast message reaches *every* process at the *same* instant,
//!   so all processes w-deliver the same sequence; before stability,
//!   per-destination loss and delay scramble the order arbitrarily.
//!
//! The paper's own contributions use neither: modified Paxos elects no
//! leader, and modified B-Consensus implements the oracle in-process.

use crate::network::{Delivery, Network, PreStability};
use crate::time::SimTime;
use esync_core::time::RealDuration;
use esync_core::types::ProcessId;
use rand::Rng;

/// The idealized leader-election oracle.
#[derive(Debug, Clone)]
pub struct LeaderOracle {
    /// How long after `TS` the stable announcement happens (default `2δ`).
    pub announce_after: RealDuration,
    announced: Option<ProcessId>,
}

impl LeaderOracle {
    /// Creates the oracle.
    pub fn new(announce_after: RealDuration) -> Self {
        LeaderOracle {
            announce_after,
            announced: None,
        }
    }

    /// When the stable announcement fires.
    pub fn announce_time(&self, ts: SimTime) -> SimTime {
        ts + self.announce_after
    }

    /// Records the stable choice: the lowest-id process alive at announce
    /// time (unique and nonfaulty thereafter, since no process fails after
    /// `TS`).
    pub fn announce(&mut self, alive: impl Iterator<Item = ProcessId>) -> Option<ProcessId> {
        let leader = alive.min();
        self.announced = leader;
        leader
    }

    /// The announced leader, if the announcement already happened.
    pub fn current(&self) -> Option<ProcessId> {
        self.announced
    }
}

/// Plans the w-delivery schedule for one w-broadcast sent at `at`.
///
/// Returns `(destination, Some(arrival))` or `(destination, None)` for a
/// loss. After stability every destination shares a single arrival instant
/// (sampled once), which — together with deterministic same-instant
/// ordering in the event queue — gives every process the same w-delivery
/// sequence: the oracle property B-Consensus needs. Before stability each
/// destination is treated independently under the pre-stability policy.
pub fn plan_wab_delivery<R: Rng>(
    at: SimTime,
    n: usize,
    network: &Network,
    pre: &PreStability,
    rng: &mut R,
) -> Vec<(ProcessId, Option<SimTime>)> {
    if at >= network.ts() {
        // One arrival instant for everyone: identical order at all
        // processes.
        let arrival = match network.classify(at, ProcessId::new(0), ProcessId::new(0), rng) {
            Delivery::At(t) => t,
            Delivery::Drop => unreachable!("no loss after stability"),
        };
        ProcessId::all(n).map(|p| (p, Some(arrival))).collect()
    } else {
        let _ = pre; // pre-stability behaviour comes from the network model
        ProcessId::all(n)
            .map(|p| {
                let d = match network.classify(at, ProcessId::new(0), p, rng) {
                    Delivery::At(t) => Some(t),
                    Delivery::Drop => None,
                };
                (p, d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn leader_oracle_picks_lowest_alive() {
        let mut o = LeaderOracle::new(RealDuration::from_millis(20));
        assert_eq!(o.current(), None);
        let leader = o.announce([2u32, 0, 4].into_iter().map(ProcessId::new));
        assert_eq!(leader, Some(ProcessId::new(0)));
        assert_eq!(o.current(), Some(ProcessId::new(0)));
    }

    #[test]
    fn leader_oracle_with_lowest_dead() {
        let mut o = LeaderOracle::new(RealDuration::from_millis(20));
        let leader = o.announce([3u32, 1].into_iter().map(ProcessId::new));
        assert_eq!(leader, Some(ProcessId::new(1)));
    }

    #[test]
    fn announce_time_offsets_ts() {
        let o = LeaderOracle::new(RealDuration::from_millis(20));
        assert_eq!(
            o.announce_time(SimTime::from_millis(100)),
            SimTime::from_millis(120)
        );
    }

    #[test]
    fn stable_wab_delivery_is_simultaneous() {
        let net = Network::new(
            SimTime::from_millis(100),
            RealDuration::from_millis(10),
            (0.1, 1.0),
            PreStability::chaos(),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let plan = plan_wab_delivery(
            SimTime::from_millis(200),
            5,
            &net,
            &PreStability::chaos(),
            &mut rng,
        );
        assert_eq!(plan.len(), 5);
        let first = plan[0].1.expect("delivered");
        for (_, t) in &plan {
            assert_eq!(*t, Some(first), "identical arrival everywhere");
        }
    }

    #[test]
    fn pre_stability_wab_delivery_is_independent() {
        let net = Network::new(
            SimTime::from_millis(1_000_000),
            RealDuration::from_millis(10),
            (0.1, 1.0),
            PreStability::chaos(),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut distinct_times = std::collections::BTreeSet::new();
        let mut losses = 0;
        for _ in 0..200 {
            let plan = plan_wab_delivery(SimTime::ZERO, 5, &net, &PreStability::chaos(), &mut rng);
            for (_, t) in plan {
                match t {
                    Some(t) => {
                        distinct_times.insert(t.as_nanos());
                    }
                    None => losses += 1,
                }
            }
        }
        assert!(distinct_times.len() > 100, "per-destination delays differ");
        assert!(losses > 100, "pre-TS w-broadcasts can be lost");
    }
}
