//! # esync-sim — a deterministic simulator of eventual synchrony
//!
//! This crate is the experimental substrate for the DSN 2005 reproduction:
//! a discrete-event simulator of the paper's system model, driving the
//! sans-IO state machines from `esync-core`.
//!
//! The model (paper §1):
//!
//! * **Before** the stabilization time `TS`: messages may be dropped or
//!   delayed arbitrarily (even past `TS`), processes may crash and restart,
//!   and the adversary may inject messages that a failed process could
//!   legitimately have sent.
//! * **After** `TS`: no process fails, restarts are allowed (and then the
//!   process stays up), and every message is delivered — and reacted to —
//!   within `δ` of sending. Self-addressed messages also traverse the
//!   network, as the paper's timing analysis assumes.
//! * Each process owns a clock with a hidden rate in `[1−ρ, 1+ρ]`;
//!   protocols set timers in *local* durations and the simulator converts.
//!
//! Everything is deterministic given a seed: clock rates, network delays
//! and event tie-breaking all derive from a [`rand_chacha`] PRNG, so every
//! experiment in `EXPERIMENTS.md` is exactly reproducible.
//!
//! ## Quick example
//!
//! ```
//! use esync_core::paxos::session::SessionPaxos;
//! use esync_sim::{PreStability, SimConfig, World};
//!
//! let cfg = SimConfig::builder(5)
//!     .seed(7)
//!     .stability_at_millis(300)
//!     .pre_stability(PreStability::chaos())
//!     .build()?;
//! let mut world = World::new(cfg, SessionPaxos::new());
//! let report = world.run_to_completion()?;
//! assert!(report.agreement(), "all deciders agree");
//! // The paper's bound: decisions within ε + 3τ + 5δ ≈ 17δ after TS.
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod clock;
pub mod error;
pub mod event;
pub mod harness;
pub mod metrics;
pub mod network;
pub mod oracle;
pub mod scenario;
pub mod time;
pub mod world;

pub use error::SimError;
pub use metrics::Report;
pub use network::PreStability;
pub use scenario::Scenario;
pub use time::SimTime;
pub use world::{SimConfig, SimConfigBuilder, World};
