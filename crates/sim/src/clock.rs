//! Per-process drifting clocks.
//!
//! The paper assumes "processes have (unsynchronized) local clocks that,
//! after time `TS`, have an error in their running rate of at most some
//! known value `ρ ≪ 1`". We model a clock as `local(t) = offset + rate·t`
//! with a hidden `rate ∈ [1−ρ, 1+ρ]` and an arbitrary `offset` — constant
//! for the whole run, which satisfies the post-`TS` requirement and is the
//! conservative choice before `TS`.

use crate::time::SimTime;
use esync_core::time::{LocalDuration, LocalInstant};
use rand::Rng;

/// A process-local clock with a hidden constant rate and offset.
///
/// The two conversion directions sit on the simulator's per-event hot path,
/// so the rate is pre-converted to Q32 fixed point: one widening multiply
/// and shift per conversion, no libm calls. Quantizing the rate to 2⁻³²
/// (≈2.3·10⁻¹⁰) is far below any admissible `ρ` and changes nothing the
/// model promises.
#[derive(Debug, Clone)]
pub struct DriftClock {
    rate: f64,
    offset_ns: u64,
    /// `round(rate · 2³²)` — multiplier for real → local.
    rate_fp: u64,
    /// `round(2³² / rate)` — multiplier for local → real.
    inv_rate_fp: u64,
}

const FP_SHIFT: u32 = 32;
const FP_HALF: u128 = 1 << (FP_SHIFT - 1);

/// `round(x · fp / 2³²)` in integer arithmetic.
#[inline(always)]
fn fp_mul(x: u64, fp: u64) -> u64 {
    ((u128::from(x) * u128::from(fp) + FP_HALF) >> FP_SHIFT) as u64
}

impl DriftClock {
    /// A perfect clock (rate 1, offset 0) — useful in tests.
    pub fn perfect() -> Self {
        DriftClock::new(1.0, 0)
    }

    /// Creates a clock with an explicit rate and offset.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64, offset_ns: u64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rate must be finite and positive, got {rate}"
        );
        let scale = (1u64 << FP_SHIFT) as f64;
        DriftClock {
            rate,
            offset_ns,
            rate_fp: (rate * scale).round() as u64,
            inv_rate_fp: (scale / rate).round() as u64,
        }
    }

    /// Samples a clock whose rate error is uniform in `[−ρ, +ρ]` and whose
    /// offset is up to one second.
    pub fn sample<R: Rng>(rho: f64, rng: &mut R) -> Self {
        let rate = if rho == 0.0 {
            1.0
        } else {
            1.0 + rng.gen_range(-rho..=rho)
        };
        let offset_ns = rng.gen_range(0..1_000_000_000u64);
        DriftClock::new(rate, offset_ns)
    }

    /// The hidden rate (tests and diagnostics only — protocols must not
    /// read this).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The local-clock reading at real time `t`.
    #[inline]
    pub fn local_at(&self, t: SimTime) -> LocalInstant {
        LocalInstant::from_nanos(self.offset_ns + fp_mul(t.as_nanos(), self.rate_fp))
    }

    /// The real time at which a timer set *now* (real time `now`) for local
    /// duration `d` fires: `now + d/rate`.
    #[inline]
    pub fn real_after(&self, now: SimTime, d: LocalDuration) -> SimTime {
        let real_ns = fp_mul(d.as_nanos(), self.inv_rate_fp);
        SimTime::from_nanos(now.as_nanos() + real_ns.max(if d.is_zero() { 0 } else { 1 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn perfect_clock_is_identity_plus_offset() {
        let c = DriftClock::perfect();
        assert_eq!(c.local_at(SimTime::from_nanos(42)).as_nanos(), 42);
        assert_eq!(
            c.real_after(SimTime::from_nanos(10), LocalDuration::from_nanos(5)),
            SimTime::from_nanos(15)
        );
    }

    #[test]
    fn fast_clock_fires_early() {
        // rate 1.25: a local duration of 125ns spans 100ns of real time.
        let c = DriftClock::new(1.25, 0);
        assert_eq!(
            c.real_after(SimTime::ZERO, LocalDuration::from_nanos(125)),
            SimTime::from_nanos(100)
        );
        assert_eq!(c.local_at(SimTime::from_nanos(100)).as_nanos(), 125);
    }

    #[test]
    fn slow_clock_fires_late() {
        let c = DriftClock::new(0.8, 0);
        assert_eq!(
            c.real_after(SimTime::ZERO, LocalDuration::from_nanos(80)),
            SimTime::from_nanos(100)
        );
    }

    #[test]
    fn offset_shifts_readings_not_durations() {
        let c = DriftClock::new(1.0, 500);
        assert_eq!(c.local_at(SimTime::from_nanos(10)).as_nanos(), 510);
        assert_eq!(
            c.real_after(SimTime::from_nanos(10), LocalDuration::from_nanos(5)),
            SimTime::from_nanos(15),
            "offset cancels out of durations"
        );
    }

    #[test]
    fn sampled_rates_respect_rho() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let c = DriftClock::sample(0.01, &mut rng);
            assert!((0.99..=1.01).contains(&c.rate()));
        }
        let c = DriftClock::sample(0.0, &mut rng);
        assert_eq!(c.rate(), 1.0);
    }

    #[test]
    fn roundtrip_local_duration_bounds() {
        // A timer set via cfg.local_at_least(d) must fire at real >= d.
        let cfg = esync_core::config::TimingConfig::builder(3)
            .rho(0.01)
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = esync_core::time::RealDuration::from_millis(40);
        for _ in 0..50 {
            let c = DriftClock::sample(0.01, &mut rng);
            let fire = c.real_after(SimTime::ZERO, cfg.local_at_least(d));
            assert!(
                fire.as_nanos() + 2 >= d.as_nanos(),
                "fired early: {fire} rate={}",
                c.rate()
            );
        }
    }

    #[test]
    fn nonzero_local_duration_advances_time() {
        let c = DriftClock::new(1.5, 0);
        let fire = c.real_after(SimTime::ZERO, LocalDuration::from_nanos(1));
        assert!(fire > SimTime::ZERO, "timers never fire in the past");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = DriftClock::new(0.0, 0);
    }
}
