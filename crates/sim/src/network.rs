//! The eventually-synchronous network model.
//!
//! Faithful to the paper's §1: the simulator makes **no assumption about
//! messages sent before `TS`** — they may be dropped or delayed arbitrarily
//! far (including past `TS`), which is exactly what enables the §2
//! obsolete-ballot pathology. A message sent at or after `TS` is delivered
//! (and reacted to) within `δ`.

use crate::time::SimTime;
use esync_core::time::RealDuration;
use esync_core::types::ProcessId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Behaviour of the network before the stabilization time `TS`.
///
/// Delays are expressed as multiples of `δ` so that one policy scales
/// across experiments with different `δ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreStability {
    /// Probability that a pre-`TS` message is lost.
    pub loss_prob: f64,
    /// Pre-`TS` delays are uniform in `[min, max]·δ`; `max` may exceed the
    /// time remaining to `TS`, so pre-`TS` messages can arrive *after*
    /// stability (obsolete messages).
    pub delay_delta_range: (f64, f64),
    /// Processes whose pre-`TS` traffic (in and out) is entirely dropped —
    /// models partitions.
    pub isolated: BTreeSet<ProcessId>,
    /// The paper's §1 simplifying variant: "every message sent before time
    /// `TS` is either lost or delivered by time `TS + δ`". When set, the
    /// sampled delivery time is clamped to `TS + δ`, so no message is ever
    /// *obsolete* — under this assumption the paper notes traditional
    /// Paxos needs only "simple modifications" to be fast.
    pub carryover_bounded: bool,
}

impl PreStability {
    /// Heavy chaos: 30% loss, delays up to `12δ` (the default adversarial
    /// environment for the headline experiments).
    pub fn chaos() -> Self {
        PreStability {
            loss_prob: 0.3,
            delay_delta_range: (0.0, 12.0),
            isolated: BTreeSet::new(),
            carryover_bounded: false,
        }
    }

    /// The network is synchronous from the start (`TS` is effectively 0 for
    /// message delivery): no loss, delays within `δ`.
    pub fn lossless() -> Self {
        PreStability {
            loss_prob: 0.0,
            delay_delta_range: (0.1, 1.0),
            isolated: BTreeSet::new(),
            carryover_bounded: false,
        }
    }

    /// Every pre-`TS` message is lost — the harshest admissible adversary.
    pub fn silent() -> Self {
        PreStability {
            loss_prob: 1.0,
            delay_delta_range: (0.0, 1.0),
            isolated: BTreeSet::new(),
            carryover_bounded: false,
        }
    }

    /// The §1 simplifying variant: lossy (50%) before `TS`, but every
    /// surviving pre-`TS` message is delivered **by `TS + δ`** — no
    /// obsolete messages exist. The paper observes that under this
    /// assumption traditional Paxos needs only "simple modifications" to
    /// decide fast; experimentally it does (see
    /// `tests/timing_bounds.rs::bounded_carryover_rescues_traditional_paxos`).
    pub fn bounded_carryover() -> Self {
        PreStability {
            loss_prob: 0.5,
            delay_delta_range: (0.0, 12.0),
            isolated: BTreeSet::new(),
            carryover_bounded: true,
        }
    }

    /// Additionally isolates `pids` before stability.
    pub fn with_isolated(mut self, pids: impl IntoIterator<Item = ProcessId>) -> Self {
        self.isolated.extend(pids);
        self
    }
}

impl Default for PreStability {
    fn default() -> Self {
        PreStability::chaos()
    }
}

/// The verdict for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message is lost.
    Drop,
    /// The message arrives at this time.
    At(SimTime),
}

/// The network: pre-`TS` policy plus the post-`TS` `δ` guarantee.
#[derive(Debug, Clone)]
pub struct Network {
    ts: SimTime,
    delta: RealDuration,
    /// Post-`TS` delays are uniform in `[min, max]·δ` with `max ≤ 1`.
    post_delay_range: (f64, f64),
    pre: PreStability,
}

impl Network {
    /// Creates the network model.
    ///
    /// # Panics
    ///
    /// Panics if the post-stability delay range is not within `(0, 1]` or
    /// the pre-stability parameters are malformed.
    pub fn new(
        ts: SimTime,
        delta: RealDuration,
        post_delay_range: (f64, f64),
        pre: PreStability,
    ) -> Self {
        assert!(
            post_delay_range.0 >= 0.0
                && post_delay_range.0 <= post_delay_range.1
                && post_delay_range.1 <= 1.0,
            "post-stability delays must lie within (0, 1]·δ, got {post_delay_range:?}"
        );
        assert!(
            (0.0..=1.0).contains(&pre.loss_prob),
            "loss probability must be in [0,1], got {}",
            pre.loss_prob
        );
        assert!(
            pre.delay_delta_range.0 >= 0.0 && pre.delay_delta_range.0 <= pre.delay_delta_range.1,
            "pre-stability delay range malformed: {:?}",
            pre.delay_delta_range
        );
        Network {
            ts,
            delta,
            post_delay_range,
            pre,
        }
    }

    /// The stabilization time.
    pub fn ts(&self) -> SimTime {
        self.ts
    }

    /// Decides the fate of a message sent at `at` from `from` to `to`.
    pub fn classify<R: Rng>(
        &self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        rng: &mut R,
    ) -> Delivery {
        if at >= self.ts {
            // Stability: delivered within δ, no exceptions.
            Delivery::At(at + self.sample_delay(self.post_delay_range, rng))
        } else {
            if self.pre.isolated.contains(&from) || self.pre.isolated.contains(&to) {
                return Delivery::Drop;
            }
            if self.pre.loss_prob >= 1.0
                || (self.pre.loss_prob > 0.0 && rng.gen_bool(self.pre.loss_prob))
            {
                return Delivery::Drop;
            }
            let arrival = at + self.sample_delay(self.pre.delay_delta_range, rng);
            if self.pre.carryover_bounded {
                // §1 variant: "either lost or delivered by time TS + δ".
                Delivery::At(arrival.min(self.ts + self.delta))
            } else {
                Delivery::At(arrival)
            }
        }
    }

    fn sample_delay<R: Rng>(&self, range: (f64, f64), rng: &mut R) -> RealDuration {
        let frac = if range.0 == range.1 {
            range.0
        } else {
            rng.gen_range(range.0..=range.1)
        };
        let d = self.delta.mul_f64(frac);
        // Delivery is never instantaneous.
        d.max(RealDuration::from_nanos(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn net(pre: PreStability) -> Network {
        Network::new(
            SimTime::from_millis(100),
            RealDuration::from_millis(10),
            (0.1, 1.0),
            pre,
        )
    }

    #[test]
    fn post_ts_always_delivers_within_delta() {
        let n = net(PreStability::chaos());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sent = SimTime::from_millis(100);
        for _ in 0..1000 {
            match n.classify(sent, ProcessId::new(0), ProcessId::new(1), &mut rng) {
                Delivery::At(t) => {
                    assert!(t > sent);
                    assert!(t.since(sent) <= RealDuration::from_millis(10));
                }
                Delivery::Drop => panic!("no loss after stability"),
            }
        }
    }

    #[test]
    fn pre_ts_can_drop_and_deliver_late() {
        let n = net(PreStability::chaos());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sent = SimTime::from_millis(1);
        let mut drops = 0;
        let mut after_ts = 0;
        for _ in 0..2000 {
            match n.classify(sent, ProcessId::new(0), ProcessId::new(1), &mut rng) {
                Delivery::Drop => drops += 1,
                Delivery::At(t) => {
                    if t >= n.ts() {
                        after_ts += 1;
                    }
                }
            }
        }
        assert!(drops > 300, "chaos loses messages: {drops}");
        assert!(
            after_ts > 100,
            "pre-TS messages can arrive after TS: {after_ts}"
        );
    }

    #[test]
    fn silent_pre_ts_drops_everything() {
        let n = net(PreStability::silent());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(
                n.classify(SimTime::ZERO, ProcessId::new(0), ProcessId::new(1), &mut rng),
                Delivery::Drop
            );
        }
    }

    #[test]
    fn isolated_processes_get_nothing_before_ts() {
        let pre = PreStability::lossless().with_isolated([ProcessId::new(2)]);
        let n = net(pre);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert_eq!(
            n.classify(SimTime::ZERO, ProcessId::new(0), ProcessId::new(2), &mut rng),
            Delivery::Drop
        );
        assert_eq!(
            n.classify(SimTime::ZERO, ProcessId::new(2), ProcessId::new(0), &mut rng),
            Delivery::Drop
        );
        assert!(matches!(
            n.classify(SimTime::ZERO, ProcessId::new(0), ProcessId::new(1), &mut rng),
            Delivery::At(_)
        ));
        // After TS the isolation lifts.
        assert!(matches!(
            n.classify(n.ts(), ProcessId::new(0), ProcessId::new(2), &mut rng),
            Delivery::At(_)
        ));
    }

    #[test]
    fn lossless_pre_ts_behaves_synchronously() {
        let n = net(PreStability::lossless());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sent = SimTime::ZERO;
        for _ in 0..200 {
            match n.classify(sent, ProcessId::new(0), ProcessId::new(1), &mut rng) {
                Delivery::At(t) => assert!(t.since(sent) <= RealDuration::from_millis(10)),
                Delivery::Drop => panic!("lossless"),
            }
        }
    }

    #[test]
    fn bounded_carryover_delivers_by_ts_plus_delta() {
        let n = net(PreStability::bounded_carryover());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let deadline = n.ts() + RealDuration::from_millis(10);
        let mut delivered = 0;
        for _ in 0..2000 {
            match n.classify(SimTime::from_millis(1), ProcessId::new(0), ProcessId::new(1), &mut rng)
            {
                Delivery::At(t) => {
                    assert!(t <= deadline, "{t} past TS+δ");
                    delivered += 1;
                }
                Delivery::Drop => {}
            }
        }
        assert!(delivered > 500, "half survive on average");
    }

    #[test]
    fn delivery_is_never_instantaneous() {
        let mut n = net(PreStability::lossless());
        n.post_delay_range = (0.0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        match n.classify(n.ts(), ProcessId::new(0), ProcessId::new(0), &mut rng) {
            Delivery::At(t) => assert!(t > n.ts()),
            Delivery::Drop => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "post-stability")]
    fn post_range_above_delta_rejected() {
        let _ = Network::new(
            SimTime::ZERO,
            RealDuration::from_millis(10),
            (0.5, 1.5),
            PreStability::lossless(),
        );
    }
}
