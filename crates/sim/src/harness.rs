//! One-call experiment runners: protocol × configuration × seeds → reports.

use crate::error::SimError;
use crate::metrics::{Report, Stats};
use crate::world::{SimConfig, World};
use esync_core::outbox::Protocol;

/// Runs one protocol under one configuration to completion.
///
/// # Errors
///
/// Propagates [`SimError::Timeout`] if the run does not complete by its
/// horizon.
pub fn run<P: Protocol>(cfg: SimConfig, protocol: P) -> Result<Report, SimError> {
    World::new(cfg, protocol).run_to_completion()
}

/// Runs `seeds` independent runs, building the configuration and protocol
/// afresh per seed.
///
/// # Errors
///
/// Fails on the first seed whose run errors.
pub fn run_seeds<P, C, F>(seeds: u64, mk_cfg: C, mk_protocol: F) -> Result<Vec<Report>, SimError>
where
    P: Protocol,
    C: Fn(u64) -> SimConfig,
    F: Fn() -> P,
{
    (0..seeds).map(|s| run(mk_cfg(s), mk_protocol())).collect()
}

/// Statistics of `max(decide − TS)` in units of `δ` over a set of runs.
pub fn decision_stats(reports: &[Report]) -> Option<Stats> {
    Stats::over(
        reports
            .iter()
            .filter_map(|r| r.max_decision_after_ts_in_delta()),
    )
}

/// Statistics of restart recovery (`decide − restart`) in units of `δ` for
/// one process over a set of runs.
pub fn restart_recovery_stats(
    reports: &[Report],
    pid: esync_core::types::ProcessId,
) -> Option<Stats> {
    Stats::over(reports.iter().filter_map(|r| {
        r.decision_after_restart(pid)
            .map(|d| d.as_nanos() as f64 / r.delta.as_nanos() as f64)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esync_core::paxos::session::SessionPaxos;

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::builder(3)
            .seed(seed)
            .stability_at_millis(150)
            .build()
            .unwrap()
    }

    #[test]
    fn run_seeds_produces_one_report_each() {
        let reports = run_seeds(5, cfg, SessionPaxos::new).unwrap();
        assert_eq!(reports.len(), 5);
        assert!(reports.iter().all(|r| r.agreement()));
        let stats = decision_stats(&reports).unwrap();
        assert_eq!(stats.count, 5);
        assert!(stats.max < 20.0, "well under ~17δ + slack: {}", stats.max);
    }

    #[test]
    fn restart_stats_empty_without_restarts() {
        let reports = run_seeds(2, cfg, SessionPaxos::new).unwrap();
        assert!(restart_recovery_stats(&reports, esync_core::types::ProcessId::new(0)).is_none());
    }
}
