//! The deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number breaks
//! same-instant ties in insertion order, making every run a deterministic
//! function of the seed.

use crate::time::SimTime;
use esync_core::types::{ProcessId, TimerId, Value};
use esync_core::wab::WabMessage;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind<M> {
    /// Start the process if it never ran, otherwise restart it.
    Boot {
        /// The (re)starting process.
        pid: ProcessId,
    },
    /// Crash the process (loses timers; state survives).
    Crash {
        /// The crashing process.
        pid: ProcessId,
    },
    /// Deliver a protocol message.
    Deliver {
        /// The sender.
        from: ProcessId,
        /// The recipient.
        to: ProcessId,
        /// The message.
        msg: M,
    },
    /// Fire a timer if its epoch is still current.
    TimerFire {
        /// The timer's owner.
        pid: ProcessId,
        /// The protocol-chosen timer id.
        timer: TimerId,
        /// The epoch at scheduling time; stale epochs are ignored.
        epoch: u64,
    },
    /// The idealized weak-ordering oracle w-delivers a message.
    WabDeliver {
        /// The recipient.
        to: ProcessId,
        /// The oracle message.
        msg: WabMessage,
    },
    /// The idealized election oracle computes and fans out its choice.
    LeaderAnnounce,
    /// The idealized election oracle informs one process.
    LeaderChange {
        /// The recipient.
        to: ProcessId,
        /// The elected leader.
        leader: ProcessId,
    },
    /// An application submits a command.
    ClientSubmit {
        /// The receiving process.
        pid: ProcessId,
        /// The command.
        value: Value,
    },
}

/// An event with its firing time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<M> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order; breaks same-instant ties.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for ScheduledEvent<M> {}

impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-heap of [`ScheduledEvent`]s ordered by `(time, seq)`.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<ScheduledEvent<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at `at`; returns the assigned sequence number.
    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
        seq
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop()
    }

    /// The firing time of the earliest event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether any pending event satisfies `pred` (O(n); used for
    /// completion checks on rare paths).
    pub fn any(&self, pred: impl Fn(&EventKind<M>) -> bool) -> bool {
        self.heap.iter().any(|e| pred(&e.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot(pid: u32) -> EventKind<()> {
        EventKind::Boot {
            pid: ProcessId::new(pid),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), boot(3));
        q.push(SimTime::from_millis(1), boot(1));
        q.push(SimTime::from_millis(2), boot(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_pops_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10u32 {
            q.push(t, boot(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Boot { pid } => pid.as_u32(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_is_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(5), boot(0));
        q.push(SimTime::from_millis(2), boot(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn any_finds_pending_kinds() {
        let mut q = EventQueue::<()>::new();
        q.push(SimTime::ZERO, boot(0));
        assert!(q.any(|k| matches!(k, EventKind::Boot { .. })));
        assert!(!q.any(|k| matches!(k, EventKind::Crash { .. })));
    }

    #[test]
    fn seq_numbers_are_unique_and_increasing() {
        let mut q = EventQueue::<()>::new();
        let a = q.push(SimTime::ZERO, boot(0));
        let b = q.push(SimTime::ZERO, boot(1));
        assert!(b > a);
    }
}
