//! The deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: the sequence number breaks
//! same-instant ties in insertion order, making every run a deterministic
//! function of the seed.
//!
//! Two hot-path design points (this queue sits under every simulated
//! message):
//!
//! * Broadcast payloads are **shared, not cloned**: a [`MsgPayload`] either
//!   owns its message (unicast) or holds an `Arc` refcount on one shared
//!   allocation (broadcast), so fanning a message out to `N` recipients
//!   costs `N` refcount bumps instead of `N` deep clones.
//! * The queue keeps an O(1) count of pending *control* events (boots and
//!   client submissions), so the simulator's completion check does not scan
//!   the heap per step.

use crate::time::SimTime;
use esync_core::types::{ProcessId, TimerId, Value};
use esync_core::wab::WabMessage;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A protocol message in flight: owned (unicast) or shared among the
/// recipients of one broadcast.
#[derive(Debug, Clone, PartialEq)]
pub enum MsgPayload<M> {
    /// A unicast message, owned by its single delivery event.
    Owned(M),
    /// One broadcast payload, shared by every recipient's delivery event.
    Shared(Arc<M>),
}

impl<M> MsgPayload<M> {
    /// Borrows the message (what [`esync_core::outbox::Process::on_message`]
    /// consumes).
    pub fn get(&self) -> &M {
        match self {
            MsgPayload::Owned(m) => m,
            MsgPayload::Shared(m) => m,
        }
    }
}

impl<M> From<M> for MsgPayload<M> {
    fn from(m: M) -> Self {
        MsgPayload::Owned(m)
    }
}

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind<M> {
    /// Start the process if it never ran, otherwise restart it.
    Boot {
        /// The (re)starting process.
        pid: ProcessId,
    },
    /// Crash the process (loses timers; state survives).
    Crash {
        /// The crashing process.
        pid: ProcessId,
    },
    /// Deliver a protocol message.
    Deliver {
        /// The sender.
        from: ProcessId,
        /// The recipient.
        to: ProcessId,
        /// The message (owned or broadcast-shared).
        msg: MsgPayload<M>,
    },
    /// Fire a timer if its epoch is still current.
    TimerFire {
        /// The timer's owner.
        pid: ProcessId,
        /// The protocol-chosen timer id.
        timer: TimerId,
        /// The epoch at scheduling time; stale epochs are ignored.
        epoch: u64,
    },
    /// The idealized weak-ordering oracle w-delivers a message.
    WabDeliver {
        /// The recipient.
        to: ProcessId,
        /// The oracle message.
        msg: WabMessage,
    },
    /// The idealized election oracle computes and fans out its choice.
    LeaderAnnounce,
    /// The idealized election oracle informs one process.
    LeaderChange {
        /// The recipient.
        to: ProcessId,
        /// The elected leader.
        leader: ProcessId,
    },
    /// An application submits a command.
    ClientSubmit {
        /// The receiving process.
        pid: ProcessId,
        /// The command.
        value: Value,
    },
}

impl<M> EventKind<M> {
    /// Whether this event can wake further protocol activity on its own
    /// (a boot or a client submission): the completion check must wait for
    /// these even when every live process has decided.
    fn is_control(&self) -> bool {
        matches!(
            self,
            EventKind::Boot { .. } | EventKind::ClientSubmit { .. }
        )
    }
}

/// An event with its firing time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<M> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order; breaks same-instant ties.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for ScheduledEvent<M> {}

impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A compact event key: 16 bytes regardless of the message type, so the
/// time-ordering structures move small fixed-size entries instead of full
/// event payloads (which can be several cache lines for rich message
/// enums). `slot` addresses the payload in the queue's slab; `seq` is the
/// tie-breaker, truncated to 32 bits (a single run schedules far fewer
/// than 2³² events — enforced in `push`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    at: SimTime,
    seq: u32,
    slot: u32,
}

impl HeapKey {
    #[inline]
    fn order(&self) -> (SimTime, u32) {
        (self.at, self.seq)
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the far spill wants
        // earliest-first.
        other.order().cmp(&self.order())
    }
}

/// Number of ring buckets (power of two). With the default bucket width
/// this covers a comfortable multiple of the longest routinely scheduled
/// delay; later events go to the far spill heap.
const RING_BUCKETS: usize = 1024;

/// Pushes between adaptive re-bucketing checks (see
/// [`EventQueue::set_adaptive`]): long enough to see a workload's real
/// scheduling horizon, short enough to react within a warmup.
const ADAPT_WINDOW: u32 = 4096;

/// The bucket span the adaptive target aims the observed horizon at:
/// half the ring, so a steady workload sits comfortably inside the
/// horizon with room for jitter before events spill far.
const ADAPT_TARGET_SPAN: u64 = (RING_BUCKETS as u64) / 2;

/// A min-queue of [`ScheduledEvent`]s ordered by `(time, seq)`.
///
/// Internally a **two-level calendar queue** — the classic discrete-event
/// simulation structure — rather than a binary heap, because heap sift
/// paths over thousands of pending events dominate simulator runtime:
///
/// * Event payloads live in a slab with a free-list; the time structures
///   move only compact 24-byte keys.
/// * Near-future events hash into a ring of `RING_BUCKETS` time buckets
///   of `bucket_width` nanoseconds each. A push is O(1); a bucket is
///   sorted once, when the clock reaches it.
/// * Events beyond the ring's horizon go to a small binary-heap spill and
///   migrate into the ring as it advances (each advance exposes exactly
///   one new absolute bucket).
///
/// Pop order is *exactly* ascending `(time, seq)` — bit-identical to the
/// binary-heap implementation it replaces (`queue_matches_reference_heap`
/// below checks this differentially).
#[derive(Debug)]
pub struct EventQueue<M> {
    slab: Vec<Option<EventKind<M>>>,
    free: Vec<u32>,
    next_seq: u64,
    control_pending: usize,
    len: usize,
    /// log2 of the bucket width in nanoseconds.
    width_shift: u32,
    /// Capacity hint for freshly-touched ring buckets (≈ expected
    /// steady-state bucket occupancy), so warm-up avoids regrowth chains.
    bucket_hint: usize,
    /// Absolute index (`at >> width_shift`) of the bucket currently being
    /// drained; every earlier bucket is empty.
    base_idx: u64,
    /// The current bucket's remaining events, sorted **descending** by
    /// `(time, seq)` so the minimum pops from the back in O(1).
    cur: Vec<HeapKey>,
    /// Unsorted buckets for absolute indices `base_idx+1 .. base_idx+RING_BUCKETS`;
    /// slot `i` holds exactly the events of absolute bucket `i & (RING_BUCKETS-1)`…
    /// i.e. of the unique in-horizon absolute index mapping to it.
    ring: Vec<Vec<HeapKey>>,
    /// Total events currently in `cur` + `ring` (excludes `far`).
    near_len: usize,
    /// Events at or beyond the ring horizon.
    far: BinaryHeap<HeapKey>,
    /// Whether the bucket width re-sizes itself from the observed
    /// scheduling horizon (default on; see [`EventQueue::set_adaptive`]).
    adaptive: bool,
    /// Pushes since the last adaptation check.
    pushes_since_check: u32,
    /// Largest push horizon (firing time minus the drain front) seen in
    /// the current window, in nanoseconds.
    max_horizon_ns: u64,
    /// Pushes in the current window that landed in the far heap — the
    /// symptom the widening rule exists to cure.
    far_pushes: u32,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        // ~1ms buckets: right for the repo's default δ = 10ms experiments
        // and harmless otherwise (correctness never depends on the width).
        EventQueue::with_bucket_width_shift(20, 0)
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue with pre-allocated space for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue::with_bucket_width_shift(20, cap)
    }

    /// Creates a queue whose ring buckets are `2^shift` nanoseconds wide,
    /// pre-allocating `cap` payload slots. The simulator picks the shift
    /// from `δ` so that in-flight messages spread across many buckets.
    /// All tunable state is initialized by [`EventQueue::reset`], the
    /// single source of the shift clamp and sizing formulas.
    pub fn with_bucket_width_shift(shift: u32, cap: usize) -> Self {
        let mut queue = EventQueue {
            slab: Vec::new(),
            free: Vec::with_capacity(cap),
            next_seq: 0,
            control_pending: 0,
            len: 0,
            width_shift: 0,
            bucket_hint: 0,
            base_idx: 0,
            cur: Vec::new(),
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            near_len: 0,
            far: BinaryHeap::new(),
            adaptive: true,
            pushes_since_check: 0,
            max_horizon_ns: 0,
            far_pushes: 0,
        };
        queue.reset(shift, cap);
        queue
    }

    /// Enables or disables **adaptive re-bucketing** (on by default).
    ///
    /// The construction-time width is a guess (the simulator derives it
    /// from `δ/16`); a workload whose timers or submissions land far
    /// beyond `RING_BUCKETS` widths keeps missing the ring and churns
    /// through the far heap — a binary heap with extra steps. When
    /// adaptive, the queue tracks the largest push horizon (firing time
    /// minus the drain front) per adaptation window (4096 pushes) and
    /// re-buckets so that horizon spans about half the ring: it
    /// widens as soon as pushes actually spill far, narrows (restoring
    /// small per-bucket sorts) only on a large margin, so the width
    /// never flaps. Re-bucketing re-places pending keys but never
    /// reorders pops — order is `(time, seq)` regardless of bucket
    /// geometry, so runs stay bit-identical either way (the differential
    /// tests drive both modes).
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
        self.pushes_since_check = 0;
        self.max_horizon_ns = 0;
        self.far_pushes = 0;
    }

    /// The current `log2` bucket width in nanoseconds (observability for
    /// tests and benches; adaptation may move it at any push).
    pub fn bucket_width_shift(&self) -> u32 {
        self.width_shift
    }

    /// Empties the queue and re-anchors it at time zero with a (possibly
    /// new) bucket width, **keeping every allocation**: the payload slab,
    /// the free list, the ring buckets and the far heap all retain their
    /// capacity. This is the engine under `World::reset` — a sweep reuses
    /// one queue across thousands of runs instead of reallocating ~`24n²`
    /// slots per seed. Behavior after `reset(shift, cap)` is
    /// indistinguishable from a fresh `with_bucket_width_shift(shift, cap)`.
    pub fn reset(&mut self, shift: u32, cap: usize) {
        let shift = shift.clamp(10, 40);
        self.slab.clear();
        self.free.clear();
        if self.slab.capacity() < cap {
            self.slab.reserve(cap);
        }
        self.next_seq = 0;
        self.control_pending = 0;
        self.len = 0;
        self.width_shift = shift;
        self.bucket_hint = (cap / 24).next_power_of_two().max(8);
        self.base_idx = 0;
        self.cur.clear();
        for bucket in &mut self.ring {
            bucket.clear();
        }
        self.near_len = 0;
        self.far.clear();
        self.pushes_since_check = 0;
        self.max_horizon_ns = 0;
        self.far_pushes = 0;
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.width_shift
    }

    /// Schedules `kind` at `at`; returns the assigned sequence number.
    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) -> u64 {
        let seq64 = self.next_seq;
        self.next_seq += 1;
        let seq = u32::try_from(seq64).expect("fewer than 2^32 events per run");
        if kind.is_control() {
            self.control_pending += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("fewer than 2^32 live events");
                self.slab.push(Some(kind));
                slot
            }
        };
        let key = HeapKey { at, seq, slot };
        let idx = self.bucket_of(at);
        // Horizon sample for adaptation, taken against the drain point
        // *before* any empty-queue re-anchor below: the distance from the
        // current drain time to the pushed instant is the in-flight span
        // the bucket geometry has to cover.
        let drain_ns = self.base_idx << self.width_shift;
        self.len += 1;
        if self.len == 1 {
            // Empty queue: re-anchor the ring at this event's bucket.
            self.base_idx = idx;
        }
        if idx <= self.base_idx {
            // Into the bucket currently being drained — or an earlier one
            // (legal as long as nothing later was popped, e.g. scheduling
            // a time-0 boot after a later crash): `cur` is the sorted
            // front run holding every pending event at or before the base
            // bucket (descending, minimum at the back), so ordering
            // against the ring (strictly later buckets) is preserved.
            let pos = self
                .cur
                .partition_point(|k| k.order() > key.order());
            self.cur.insert(pos, key);
            self.near_len += 1;
        } else if idx - self.base_idx < RING_BUCKETS as u64 {
            let bucket = &mut self.ring[(idx as usize) & (RING_BUCKETS - 1)];
            if bucket.capacity() == 0 {
                bucket.reserve(self.bucket_hint);
            }
            bucket.push(key);
            self.near_len += 1;
        } else {
            self.far.push(key);
            self.far_pushes += 1;
        }
        if self.adaptive {
            self.max_horizon_ns = self
                .max_horizon_ns
                .max(at.as_nanos().saturating_sub(drain_ns));
            self.pushes_since_check += 1;
            if self.pushes_since_check >= ADAPT_WINDOW {
                self.maybe_adapt();
            }
        }
        seq64
    }

    /// Closes an adaptation window: picks the bucket width that makes the
    /// window's largest observed horizon span ~[`ADAPT_TARGET_SPAN`]
    /// buckets, and re-buckets when the current width is off — eagerly
    /// when too narrow *and* pushes are demonstrably spilling far, only
    /// past a two-shift hysteresis margin when too wide (over-wide
    /// buckets merely cost larger per-bucket sorts, so narrowing can
    /// afford to be patient and flap-free).
    fn maybe_adapt(&mut self) {
        self.pushes_since_check = 0;
        let horizon = std::mem::take(&mut self.max_horizon_ns);
        let far_pushes = std::mem::take(&mut self.far_pushes);
        let ideal = (horizon / ADAPT_TARGET_SPAN).max(1).ilog2().clamp(10, 40);
        let too_narrow = ideal > self.width_shift && far_pushes > ADAPT_WINDOW / 64;
        let too_wide = ideal + 2 < self.width_shift;
        if too_narrow || too_wide {
            self.rebucket(ideal);
        }
    }

    /// Re-places every pending key under a new bucket width, re-anchoring
    /// the ring at the earliest pending bucket. Placement is geometry,
    /// not order: pops stay exactly ascending `(time, seq)` across the
    /// rebuild (`adaptive_queue_matches_reference_heap` checks this
    /// differentially through repeated re-bucketings).
    fn rebucket(&mut self, new_shift: u32) {
        let mut keys: Vec<HeapKey> = Vec::with_capacity(self.len);
        keys.append(&mut self.cur);
        for bucket in &mut self.ring {
            keys.append(bucket);
        }
        keys.extend(self.far.drain());
        self.near_len = 0;
        self.width_shift = new_shift;
        let Some(min_at) = keys.iter().map(|k| k.at).min() else {
            return;
        };
        self.base_idx = self.bucket_of(min_at);
        for key in keys {
            let idx = self.bucket_of(key.at);
            if idx <= self.base_idx {
                self.cur.push(key);
                self.near_len += 1;
            } else if idx - self.base_idx < RING_BUCKETS as u64 {
                let bucket = &mut self.ring[(idx as usize) & (RING_BUCKETS - 1)];
                if bucket.capacity() == 0 {
                    bucket.reserve(self.bucket_hint);
                }
                bucket.push(key);
                self.near_len += 1;
            } else {
                self.far.push(key);
            }
        }
        // `cur` is the sorted front run (descending, minimum at the back).
        self.cur
            .sort_unstable_by_key(|k| std::cmp::Reverse(k.order()));
    }

    /// Advances `base_idx` to the next non-empty bucket, loading and
    /// sorting it into `cur`. Caller guarantees the queue is non-empty and
    /// `cur` is exhausted.
    fn advance(&mut self) {
        debug_assert!(self.cur.is_empty());
        if self.near_len == 0 {
            // Everything pending lives in the far heap: jump the ring
            // forward to the earliest far bucket, then migrate its horizon.
            let min_at = self.far.peek().expect("queue non-empty").at;
            self.base_idx = self.bucket_of(min_at);
            self.migrate_far();
        }
        loop {
            // Expose the bucket at `base_idx`; its ring slot holds exactly
            // the events of this absolute index (see `push`).
            let slot = (self.base_idx as usize) & (RING_BUCKETS - 1);
            if !self.ring[slot].is_empty() {
                std::mem::swap(&mut self.cur, &mut self.ring[slot]);
                // Descending sort: minimum (time, seq) at the back.
                self.cur
                    .sort_unstable_by_key(|k| std::cmp::Reverse(k.order()));
                return;
            }
            self.base_idx += 1;
            self.migrate_far();
        }
    }

    /// Moves far events whose bucket just entered the ring horizon
    /// (`base_idx + RING_BUCKETS - 1`) into their ring slot — called once
    /// per `base_idx` advance, so each exposure is handled exactly once.
    fn migrate_far(&mut self) {
        let horizon_end = self.base_idx + RING_BUCKETS as u64;
        while let Some(k) = self.far.peek() {
            let idx = self.bucket_of(k.at);
            debug_assert!(idx >= self.base_idx);
            if idx >= horizon_end {
                break;
            }
            let k = self.far.pop().expect("peeked");
            self.ring[(idx as usize) & (RING_BUCKETS - 1)].push(k);
            self.near_len += 1;
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        let key = self.cur.pop().expect("advance found a non-empty bucket");
        self.near_len -= 1;
        self.len -= 1;
        let kind = self.slab[key.slot as usize]
            .take()
            .expect("key points at a live slab slot");
        self.free.push(key.slot);
        if kind.is_control() {
            self.control_pending -= 1;
        }
        Some(ScheduledEvent {
            at: key.at,
            seq: u64::from(key.seq),
            kind,
        })
    }

    /// The firing time of the earliest event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        self.cur.last().map(|k| k.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pending control events (boots and client submissions),
    /// maintained incrementally — O(1), unlike [`EventQueue::any`].
    pub fn control_pending(&self) -> usize {
        self.control_pending
    }

    /// Whether any pending event satisfies `pred` (O(n); for assertions and
    /// rare paths — hot paths use [`EventQueue::control_pending`]).
    pub fn any(&self, pred: impl Fn(&EventKind<M>) -> bool) -> bool {
        self.slab.iter().flatten().any(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot(pid: u32) -> EventKind<()> {
        EventKind::Boot {
            pid: ProcessId::new(pid),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), boot(3));
        q.push(SimTime::from_millis(1), boot(1));
        q.push(SimTime::from_millis(2), boot(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_pops_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10u32 {
            q.push(t, boot(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Boot { pid } => pid.as_u32(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_is_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(5), boot(0));
        q.push(SimTime::from_millis(2), boot(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn any_finds_pending_kinds() {
        let mut q = EventQueue::<()>::new();
        q.push(SimTime::ZERO, boot(0));
        assert!(q.any(|k| matches!(k, EventKind::Boot { .. })));
        assert!(!q.any(|k| matches!(k, EventKind::Crash { .. })));
    }

    #[test]
    fn seq_numbers_are_unique_and_increasing() {
        let mut q = EventQueue::<()>::new();
        let a = q.push(SimTime::ZERO, boot(0));
        let b = q.push(SimTime::ZERO, boot(1));
        assert!(b > a);
    }

    #[test]
    fn control_pending_tracks_boots_and_submits() {
        let mut q = EventQueue::<()>::new();
        assert_eq!(q.control_pending(), 0);
        q.push(SimTime::ZERO, boot(0));
        q.push(
            SimTime::ZERO,
            EventKind::ClientSubmit {
                pid: ProcessId::new(0),
                value: Value::new(1),
            },
        );
        q.push(
            SimTime::ZERO,
            EventKind::Crash {
                pid: ProcessId::new(0),
            },
        );
        assert_eq!(q.control_pending(), 2);
        while q.pop().is_some() {}
        assert_eq!(q.control_pending(), 0);
    }

    #[test]
    fn shared_payload_borrows_one_allocation() {
        let arc = Arc::new(vec![1u8, 2, 3]);
        let a = MsgPayload::Shared(Arc::clone(&arc));
        let b = MsgPayload::Shared(Arc::clone(&arc));
        assert_eq!(a.get(), b.get());
        assert_eq!(Arc::strong_count(&arc), 3);
        let owned: MsgPayload<u32> = 7u32.into();
        assert_eq!(*owned.get(), 7);
    }

    #[test]
    fn with_capacity_preallocates() {
        let q = EventQueue::<()>::with_capacity(64);
        assert!(q.is_empty());
        assert_eq!(q.control_pending(), 0);
    }

    #[test]
    fn reset_behaves_like_fresh_queue() {
        let mut q = EventQueue::<()>::with_bucket_width_shift(14, 32);
        for i in 0..50u32 {
            q.push(SimTime::from_micros(u64::from(i) * 37), boot(i));
        }
        for _ in 0..20 {
            q.pop();
        }
        q.reset(20, 64);
        assert!(q.is_empty());
        assert_eq!(q.control_pending(), 0);
        // Sequence numbers restart at zero; order is exact again.
        let seq = q.push(SimTime::from_millis(2), boot(1));
        assert_eq!(seq, 0);
        q.push(SimTime::from_millis(1), boot(0));
        assert_eq!(q.pop().unwrap().at, SimTime::from_millis(1));
        assert_eq!(q.pop().unwrap().at, SimTime::from_millis(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn adaptive_widening_pulls_far_pushes_into_the_ring() {
        // Narrow 2^14ns buckets cover a 16.8ms ring horizon; a workload
        // whose delays reach seconds keeps spilling far until the
        // adaptive rule widens the width to fit.
        let mut q: EventQueue<()> = EventQueue::with_bucket_width_shift(14, 0);
        assert_eq!(q.bucket_width_shift(), 14);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        // Two pushes per pop keeps thousands of timers in flight, spread
        // over a ~4.3s horizon — far beyond the 16.8ms ring span at 2^14.
        let mut now = 0u64;
        for i in 0..2 * ADAPT_WINDOW {
            let at = SimTime::from_nanos(now + rand() % (1 << 32));
            q.push(at, boot(0));
            if i % 2 == 0 {
                now = q.pop().map_or(now, |e| e.at.as_nanos());
            }
        }
        let widened = q.bucket_width_shift();
        assert!(widened > 14, "width adapted up from 14: {widened}");
        // ~4.3s horizon over 512 target buckets → ~2^23ns buckets.
        assert!((20..=26).contains(&widened), "sane target: {widened}");
        // Fixed mode never moves.
        let mut fixed: EventQueue<()> = EventQueue::with_bucket_width_shift(14, 0);
        fixed.set_adaptive(false);
        let mut now = 0u64;
        for i in 0..2 * ADAPT_WINDOW {
            let at = SimTime::from_nanos(now + rand() % (1 << 32));
            fixed.push(at, boot(0));
            if i % 2 == 0 {
                now = fixed.pop().map_or(now, |e| e.at.as_nanos());
            }
        }
        assert_eq!(fixed.bucket_width_shift(), 14);
    }

    /// Differential check through live re-bucketing: long trials with
    /// wide (multi-second) horizons cross many adaptation windows, so
    /// pops must stay exactly `(time, seq)`-ordered across repeated
    /// width changes — and the widths must actually change.
    #[test]
    fn adaptive_queue_matches_reference_heap() {
        use std::collections::BTreeMap;
        let mut adapted = false;
        for trial in 0u64..4 {
            let mut x = 0xd134_2543_de82_ef95u64.wrapping_mul(trial + 1);
            let mut rand = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let mut q: EventQueue<u64> = EventQueue::with_bucket_width_shift(12, 0);
            let mut reference: BTreeMap<(SimTime, u64), u64> = BTreeMap::new();
            let mut now = 0u64;
            let mut payload = 0u64;
            for _ in 0..30_000 {
                let r = rand();
                let do_push = reference.is_empty() || r % 5 < 3;
                if do_push {
                    let delay = match r % 7 {
                        0 => 0,
                        1 => 1 + r % 100,
                        2..=4 => r % (1 << 18),
                        // Far beyond the initial 4096-wide ring: forces
                        // spill, then adaptation.
                        5 => r % (1 << 30),
                        _ => r % (1 << 34),
                    };
                    let at = SimTime::from_nanos(now + delay);
                    payload += 1;
                    let seq = q.push(
                        at,
                        EventKind::ClientSubmit {
                            pid: ProcessId::new(0),
                            value: Value::new(payload),
                        },
                    );
                    reference.insert((at, seq), payload);
                } else {
                    let got = q.pop().expect("reference non-empty");
                    let (&(at, seq), &val) = reference.iter().next().unwrap();
                    assert_eq!((got.at, got.seq), (at, seq), "trial {trial}");
                    match got.kind {
                        EventKind::ClientSubmit { value, .. } => {
                            assert_eq!(value.get(), val, "trial {trial}")
                        }
                        _ => unreachable!(),
                    }
                    reference.remove(&(at, seq));
                    now = at.as_nanos();
                }
            }
            adapted |= q.bucket_width_shift() != 12;
            while let Some(got) = q.pop() {
                let (&(at, seq), _) = reference.iter().next().unwrap();
                assert_eq!((got.at, got.seq), (at, seq), "drain, trial {trial}");
                reference.remove(&(at, seq));
            }
            assert!(reference.is_empty());
            assert_eq!(q.len(), 0);
        }
        assert!(adapted, "wide-horizon trials must exercise re-bucketing");
    }

    /// Differential check: the calendar queue pops in exactly the same
    /// `(time, seq)` order as a reference sorted structure, across many
    /// randomized interleavings of pushes and pops (including monotone
    /// "simulation-like" pushes relative to the last popped time, far-future
    /// outliers beyond the ring horizon, and same-instant bursts).
    #[test]
    fn queue_matches_reference_heap() {
        use std::collections::BTreeMap;
        for trial in 0u64..20 {
            let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(trial + 1);
            let mut rand = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let mut q: EventQueue<u64> = EventQueue::with_bucket_width_shift(14, 0);
            let mut reference: BTreeMap<(SimTime, u64), u64> = BTreeMap::new();
            let mut now = 0u64;
            let mut payload = 0u64;
            for _ in 0..3000 {
                let r = rand();
                let do_push = reference.is_empty() || r % 5 < 3;
                if do_push {
                    let delay = match r % 7 {
                        // Same instant, tiny, in-ring, and far-horizon delays.
                        0 => 0,
                        1 => 1 + r % 100,
                        2..=4 => r % (1 << 18),
                        5 => r % (1 << 22),
                        _ => r % (1 << 28),
                    };
                    let at = SimTime::from_nanos(now + delay);
                    payload += 1;
                    let seq = q.push(
                        at,
                        EventKind::ClientSubmit {
                            pid: ProcessId::new(0),
                            value: Value::new(payload),
                        },
                    );
                    reference.insert((at, seq), payload);
                } else {
                    let got = q.pop().expect("reference non-empty");
                    let (&(at, seq), &val) = reference.iter().next().unwrap();
                    assert_eq!((got.at, got.seq), (at, seq), "trial {trial}");
                    match got.kind {
                        EventKind::ClientSubmit { value, .. } => {
                            assert_eq!(value.get(), val, "trial {trial}")
                        }
                        _ => unreachable!(),
                    }
                    reference.remove(&(at, seq));
                    now = at.as_nanos();
                }
            }
            // Drain fully; order must stay exact.
            while let Some(got) = q.pop() {
                let (&(at, seq), _) = reference.iter().next().unwrap();
                assert_eq!((got.at, got.seq), (at, seq), "drain, trial {trial}");
                reference.remove(&(at, seq));
            }
            assert!(reference.is_empty());
            assert_eq!(q.len(), 0);
        }
    }
}
