//! Fault and workload scripts.
//!
//! A [`Scenario`] lists the crashes, restarts and client submissions of one
//! run. The model's constraint — "after time `TS` no process fails" — is
//! validated by the world at construction; restarts are allowed at any time
//! (a process that restarts after `TS` stays up and must decide within
//! `O(δ)` of restarting, experiment E4).

use crate::time::SimTime;
use esync_core::types::{ProcessId, Value};
use serde::{Deserialize, Serialize};

/// Fault and workload script for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// `(pid, at)` crash events; must satisfy `at ≤ TS`.
    pub crashes: Vec<(ProcessId, SimTime)>,
    /// `(pid, at)` restart events.
    pub restarts: Vec<(ProcessId, SimTime)>,
    /// `(pid, at, value)` client submissions (multi-instance protocols).
    pub submits: Vec<(ProcessId, SimTime, Value)>,
}

impl Scenario {
    /// The empty scenario: everyone runs from time 0, no faults.
    pub fn none() -> Self {
        Scenario::default()
    }

    /// Adds a crash at `at` (consumed-and-returned for chaining).
    pub fn crash(mut self, pid: ProcessId, at: SimTime) -> Self {
        self.crashes.push((pid, at));
        self
    }

    /// Adds a restart at `at`.
    pub fn restart(mut self, pid: ProcessId, at: SimTime) -> Self {
        self.restarts.push((pid, at));
        self
    }

    /// Crashes `pid` at `down` and restarts it at `up`.
    ///
    /// # Panics
    ///
    /// Panics if `up ≤ down`.
    pub fn down_between(self, pid: ProcessId, down: SimTime, up: SimTime) -> Self {
        assert!(up > down, "restart must follow the crash");
        self.crash(pid, down).restart(pid, up)
    }

    /// Crashes `pid` at time 0, never to restart ("dead forever": allowed
    /// as long as a majority is nonfaulty at `TS`).
    pub fn dead_forever(self, pid: ProcessId) -> Self {
        self.crash(pid, SimTime::ZERO)
    }

    /// Submits a client command to `pid` at `at`.
    pub fn submit(mut self, pid: ProcessId, at: SimTime, value: Value) -> Self {
        self.submits.push((pid, at, value));
        self
    }

    /// Every process referenced by this scenario.
    pub fn referenced_pids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashes
            .iter()
            .map(|(p, _)| *p)
            .chain(self.restarts.iter().map(|(p, _)| *p))
            .chain(self.submits.iter().map(|(p, _, _)| *p))
    }

    /// Processes that are crashed at `t` and have no restart scheduled at
    /// or before `t` (i.e. down at time `t` according to the script).
    pub fn down_at(&self, t: SimTime) -> Vec<ProcessId> {
        let mut down = Vec::new();
        for &(pid, at) in &self.crashes {
            if at <= t {
                let restarted = self
                    .restarts
                    .iter()
                    .any(|&(rp, rt)| rp == pid && rt >= at && rt <= t);
                if !restarted && !down.contains(&pid) {
                    down.push(pid);
                }
            }
        }
        down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn builder_chains() {
        let s = Scenario::none()
            .crash(pid(1), SimTime::from_millis(10))
            .restart(pid(1), SimTime::from_millis(50))
            .submit(pid(0), SimTime::from_millis(5), Value::new(9));
        assert_eq!(s.crashes.len(), 1);
        assert_eq!(s.restarts.len(), 1);
        assert_eq!(s.submits.len(), 1);
    }

    #[test]
    fn down_between_expands() {
        let s = Scenario::none().down_between(pid(2), SimTime::from_millis(1), SimTime::from_millis(9));
        assert_eq!(s.crashes, vec![(pid(2), SimTime::from_millis(1))]);
        assert_eq!(s.restarts, vec![(pid(2), SimTime::from_millis(9))]);
    }

    #[test]
    #[should_panic(expected = "restart must follow")]
    fn down_between_validates_order() {
        let _ = Scenario::none().down_between(pid(0), SimTime::from_millis(9), SimTime::from_millis(1));
    }

    #[test]
    fn dead_forever_is_crash_at_zero() {
        let s = Scenario::none().dead_forever(pid(3));
        assert_eq!(s.crashes, vec![(pid(3), SimTime::ZERO)]);
        assert!(s.restarts.is_empty());
    }

    #[test]
    fn down_at_reflects_script() {
        let s = Scenario::none()
            .down_between(pid(1), SimTime::from_millis(10), SimTime::from_millis(50))
            .dead_forever(pid(2));
        assert_eq!(s.down_at(SimTime::from_millis(20)), vec![pid(1), pid(2)]);
        assert_eq!(s.down_at(SimTime::from_millis(60)), vec![pid(2)]);
        assert_eq!(s.down_at(SimTime::from_millis(5)), vec![pid(2)]);
    }

    #[test]
    fn referenced_pids_cover_all_fields() {
        let s = Scenario::none()
            .crash(pid(1), SimTime::ZERO)
            .restart(pid(2), SimTime::ZERO)
            .submit(pid(3), SimTime::ZERO, Value::new(0));
        let pids: Vec<_> = s.referenced_pids().collect();
        assert_eq!(pids, vec![pid(1), pid(2), pid(3)]);
    }
}
