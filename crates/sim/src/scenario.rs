//! Fault and workload scripts.
//!
//! A [`Scenario`] lists the crashes, restarts and client submissions of one
//! run. The model's constraint — "after time `TS` no process fails" — is
//! validated by the world at construction; restarts are allowed at any time
//! (a process that restarts after `TS` stays up and must decide within
//! `O(δ)` of restarting, experiment E4).
//!
//! Besides single [`Scenario::submit`] events, a scenario can carry
//! [`SubmitStream`]s — compact, seedable specifications of *recurring*
//! client-submission traffic (fixed-rate or Poisson arrivals of keyed KV
//! commands). Streams are the open-loop workload hook: the world expands
//! them into `ClientSubmit` events at construction, and the
//! `esync-workload` crate replays the **same** expansion against the
//! threaded runtime, so both backends see bit-identical command sequences.

use crate::time::SimTime;
use esync_core::time::RealDuration;
use esync_core::types::{ProcessId, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Fault and workload script for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// `(pid, at)` crash events; must satisfy `at ≤ TS`.
    pub crashes: Vec<(ProcessId, SimTime)>,
    /// `(pid, at)` restart events.
    pub restarts: Vec<(ProcessId, SimTime)>,
    /// `(pid, at, value)` client submissions (multi-instance protocols).
    pub submits: Vec<(ProcessId, SimTime, Value)>,
    /// Recurring client-submission streams (multi-instance protocols).
    pub streams: Vec<SubmitStream>,
}

impl Scenario {
    /// The empty scenario: everyone runs from time 0, no faults.
    pub fn none() -> Self {
        Scenario::default()
    }

    /// Adds a crash at `at` (consumed-and-returned for chaining).
    pub fn crash(mut self, pid: ProcessId, at: SimTime) -> Self {
        self.crashes.push((pid, at));
        self
    }

    /// Adds a restart at `at`.
    pub fn restart(mut self, pid: ProcessId, at: SimTime) -> Self {
        self.restarts.push((pid, at));
        self
    }

    /// Crashes `pid` at `down` and restarts it at `up`.
    ///
    /// # Panics
    ///
    /// Panics if `up ≤ down`.
    pub fn down_between(self, pid: ProcessId, down: SimTime, up: SimTime) -> Self {
        assert!(up > down, "restart must follow the crash");
        self.crash(pid, down).restart(pid, up)
    }

    /// Crashes `pid` at time 0, never to restart ("dead forever": allowed
    /// as long as a majority is nonfaulty at `TS`).
    pub fn dead_forever(self, pid: ProcessId) -> Self {
        self.crash(pid, SimTime::ZERO)
    }

    /// Submits a client command to `pid` at `at`.
    pub fn submit(mut self, pid: ProcessId, at: SimTime, value: Value) -> Self {
        self.submits.push((pid, at, value));
        self
    }

    /// Adds a recurring client-submission stream.
    pub fn stream(mut self, stream: SubmitStream) -> Self {
        self.streams.push(stream);
        self
    }

    /// Every process referenced by this scenario.
    pub fn referenced_pids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashes
            .iter()
            .map(|(p, _)| *p)
            .chain(self.restarts.iter().map(|(p, _)| *p))
            .chain(self.submits.iter().map(|(p, _, _)| *p))
            .chain(self.streams.iter().filter_map(|s| match s.target {
                StreamTarget::Fixed(p) => Some(p),
                StreamTarget::RoundRobin => None,
            }))
    }

    /// Processes that are crashed at `t` and have no restart scheduled at
    /// or before `t` (i.e. down at time `t` according to the script).
    pub fn down_at(&self, t: SimTime) -> Vec<ProcessId> {
        let mut down = Vec::new();
        for &(pid, at) in &self.crashes {
            if at <= t {
                let restarted = self
                    .restarts
                    .iter()
                    .any(|&(rp, rt)| rp == pid && rt >= at && rt <= t);
                if !restarted && !down.contains(&pid) {
                    down.push(pid);
                }
            }
        }
        down
    }
}

/// Which process a stream's commands are submitted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamTarget {
    /// Every command goes to one process.
    Fixed(ProcessId),
    /// Command `i` goes to process `i mod n` (clients spread over replicas).
    RoundRobin,
}

/// Inter-arrival process of a [`SubmitStream`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Arrivals {
    /// Exactly one command per `interval` (deterministic rate).
    FixedRate {
        /// The inter-arrival gap.
        interval: RealDuration,
    },
    /// Poisson arrivals: exponential inter-arrival gaps with the given
    /// mean, sampled from the stream's seed.
    Poisson {
        /// The mean inter-arrival gap (`1/λ`).
        mean: RealDuration,
    },
}

// The keyed-KV command encoding lives in `esync_core::types` (the shard
// router in `esync_core::paxos::group` partitions by key); re-exported
// here where the workload generators historically found it.
pub use esync_core::types::{kv_command, kv_id, kv_key, KEY_SHIFT};

/// The key distribution of a workload generator — how skewed the KV
/// working set is. Shared by the open-loop [`SubmitStream`] and the
/// closed-loop drivers of `esync-workload` (which re-exports it), over
/// both backends: the same `(dist, key_space, seed)` samples the same
/// key sequence everywhere.
///
/// Skew is what makes routing interesting: a static range-partitioned
/// shard router collapses to one hot shard under `Hotspot`/`Zipfian`
/// keys, and the population-dynamics consensus literature likewise
/// studies exactly the adversarial input distributions — `Uniform` is
/// the easy case, the others are the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum KeyDist {
    /// Keys uniform over `0..key_space` — the balanced baseline.
    #[default]
    Uniform,
    /// Zipf-distributed ranks over `0..key_space` (YCSB-style sampler):
    /// key 0 is the hottest, with tail exponent `theta ∈ (0, 1)`
    /// (0.99 ≈ the classic YCSB default). Unscrambled on purpose — hot
    /// keys are *contiguous at the bottom of the key space*, the
    /// worst case for a range router.
    Zipfian {
        /// The skew exponent; larger is more skewed. Must be in `(0, 1)`.
        theta: f64,
    },
    /// A contiguous hot span: with probability `frac` the key is uniform
    /// over `0..span`, otherwise uniform over the whole space.
    Hotspot {
        /// Fraction of traffic hitting the hot span.
        frac: f64,
        /// Width of the hot span, in keys (clamped to the key space).
        span: u64,
    },
    /// A *moving* hot span (`frac = 0.9`, width `key_space / 16`): every
    /// `period` commands the span advances by its own width, wrapping
    /// around the key space — the workload a one-shot rebalance cannot
    /// serve, only continuous rebalancing can.
    Shifting {
        /// Commands between span advances.
        period: u64,
    },
}

/// Fraction of traffic hitting the moving hot span of
/// [`KeyDist::Shifting`].
const SHIFTING_FRAC: f64 = 0.9;

/// A prepared sampler for one [`KeyDist`] over one key space. Holds the
/// Zipf tables so the per-key cost stays O(1); construction is
/// `O(key_space)` for `Zipfian` and O(1) otherwise.
#[derive(Debug, Clone)]
pub struct KeySampler {
    dist: KeyDist,
    key_space: u64,
    /// Precomputed Zipf constants `(zetan, alpha, eta)`.
    zipf: Option<(f64, f64, f64)>,
}

impl KeySampler {
    /// Prepares a sampler.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters: a `Zipfian` theta outside `(0, 1)`
    /// or key space above 2²⁰ (the zeta precomputation is linear in it),
    /// a `Hotspot` fraction outside `[0, 1]` or zero span, a zero
    /// `Shifting` period.
    pub fn new(dist: KeyDist, key_space: u64) -> Self {
        let zipf = match dist {
            KeyDist::Zipfian { theta } => {
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "Zipf theta must be in (0, 1), got {theta}"
                );
                assert!(
                    (1..=1 << 20).contains(&key_space),
                    "Zipfian needs 1 <= key_space <= 2^20, got {key_space}"
                );
                let n = key_space;
                let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
                let zeta2 = 1.0 + 0.5f64.powf(theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                Some((zetan, alpha, eta))
            }
            KeyDist::Hotspot { frac, span } => {
                assert!((0.0..=1.0).contains(&frac), "hot fraction in [0, 1], got {frac}");
                assert!(span >= 1, "the hot span holds at least one key");
                None
            }
            KeyDist::Shifting { period } => {
                assert!(period >= 1, "the shift period is at least one command");
                None
            }
            KeyDist::Uniform => None,
        };
        KeySampler {
            dist,
            key_space,
            zipf,
        }
    }

    /// The distribution this sampler draws from.
    pub fn dist(&self) -> KeyDist {
        self.dist
    }

    /// Samples the key of command number `index` (0-based; only
    /// `Shifting` reads it — the hot span's position is a function of
    /// the index, so both backends' replays shift in lockstep).
    pub fn sample(&self, rng: &mut ChaCha8Rng, index: u64) -> u64 {
        let ks = self.key_space;
        debug_assert!(ks >= 1, "keyed sampling needs a nonempty key space");
        match self.dist {
            KeyDist::Uniform => rng.gen_range(0..ks),
            KeyDist::Zipfian { theta } => {
                // YCSB's zipfian_generator: inverse-CDF with the
                // precomputed constants.
                let (zetan, alpha, eta) = self.zipf.expect("prepared at construction");
                let u: f64 = rng.gen_range(0.0..1.0);
                let uz = u * zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(theta) {
                    1.min(ks - 1)
                } else {
                    let rank = (ks as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64;
                    rank.min(ks - 1)
                }
            }
            KeyDist::Hotspot { frac, span } => {
                let span = span.min(ks);
                if rng.gen_range(0.0..1.0) < frac {
                    rng.gen_range(0..span)
                } else {
                    rng.gen_range(0..ks)
                }
            }
            KeyDist::Shifting { period } => {
                let width = (ks / 16).max(1);
                let start = (index / period).wrapping_mul(width) % ks;
                if rng.gen_range(0.0..1.0) < SHIFTING_FRAC {
                    (start + rng.gen_range(0..width)) % ks
                } else {
                    rng.gen_range(0..ks)
                }
            }
        }
    }
}

/// A deterministic, seedable stream of recurring client submissions —
/// the open-loop workload generator.
///
/// Every field is plain data, so a stream round-trips through the
/// serialized [`crate::SimConfig`] embedded in benchmark artifacts: the
/// exact command sequence is reproducible from the artifact alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitStream {
    /// Where commands land.
    pub target: StreamTarget,
    /// First arrival instant.
    pub start: SimTime,
    /// Inter-arrival process after `start`.
    pub arrivals: Arrivals,
    /// Number of commands.
    pub count: u64,
    /// Stream-local PRNG seed (Poisson gaps and key sampling); independent
    /// of the world seed so workloads can be varied against a fixed
    /// network schedule and vice versa.
    pub seed: u64,
    /// Command ids are `id_base + i` — give concurrent streams disjoint
    /// ranges to keep ids unique run-wide.
    pub id_base: u64,
    /// Keys are sampled from `0..key_space` (`0` disables keying: values
    /// carry the bare id).
    pub key_space: u64,
    /// How keys are drawn from the key space (default uniform).
    pub dist: KeyDist,
}

impl SubmitStream {
    /// A fixed-rate stream of `count` unkeyed commands starting at `start`.
    pub fn fixed_rate(start: SimTime, interval: RealDuration, count: u64) -> Self {
        SubmitStream {
            target: StreamTarget::RoundRobin,
            start,
            arrivals: Arrivals::FixedRate { interval },
            count,
            seed: 0,
            id_base: 0,
            key_space: 0,
            dist: KeyDist::Uniform,
        }
    }

    /// A Poisson stream of `count` unkeyed commands starting at `start`.
    pub fn poisson(start: SimTime, mean: RealDuration, count: u64) -> Self {
        SubmitStream {
            arrivals: Arrivals::Poisson { mean },
            ..SubmitStream::fixed_rate(start, mean, count)
        }
    }

    /// Sets the target (consumed-and-returned for chaining).
    #[must_use]
    pub fn target(mut self, target: StreamTarget) -> Self {
        self.target = target;
        self
    }

    /// Sets the stream seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the id base.
    #[must_use]
    pub fn id_base(mut self, id_base: u64) -> Self {
        self.id_base = id_base;
        self
    }

    /// Samples keys from `0..key_space`.
    #[must_use]
    pub fn keyed(mut self, key_space: u64) -> Self {
        self.key_space = key_space;
        self
    }

    /// Sets the key distribution (see [`KeyDist`]; only meaningful for
    /// keyed streams).
    #[must_use]
    pub fn dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Expands the stream into its `(at, pid, value)` submissions, in
    /// arrival order, for an `n`-process system. Deterministic in
    /// `(self, n)`: the simulator world and the threaded-runtime driver
    /// both consume this expansion, so the two backends replay an
    /// identical command sequence.
    pub fn expand(&self, n: usize) -> Vec<(SimTime, ProcessId, Value)> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let sampler = (self.key_space > 0).then(|| KeySampler::new(self.dist, self.key_space));
        let mut at = self.start;
        let mut out = Vec::with_capacity(self.count as usize);
        for i in 0..self.count {
            if i > 0 {
                let gap = match self.arrivals {
                    Arrivals::FixedRate { interval } => interval,
                    Arrivals::Poisson { mean } => {
                        // Inverse-CDF exponential sampling; `u < 1` keeps
                        // the log argument positive and the gap finite.
                        let u: f64 = rng.gen_range(0.0..1.0);
                        mean.mul_f64(-(1.0 - u).ln())
                    }
                };
                at = at + gap;
            }
            let pid = match self.target {
                StreamTarget::Fixed(p) => p,
                StreamTarget::RoundRobin => ProcessId::new((i % n as u64) as u32),
            };
            let id = self.id_base + i;
            let value = match &sampler {
                None => Value::new(id),
                Some(s) => kv_command(s.sample(&mut rng, i), id),
            };
            out.push((at, pid, value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn builder_chains() {
        let s = Scenario::none()
            .crash(pid(1), SimTime::from_millis(10))
            .restart(pid(1), SimTime::from_millis(50))
            .submit(pid(0), SimTime::from_millis(5), Value::new(9));
        assert_eq!(s.crashes.len(), 1);
        assert_eq!(s.restarts.len(), 1);
        assert_eq!(s.submits.len(), 1);
    }

    #[test]
    fn down_between_expands() {
        let s = Scenario::none().down_between(pid(2), SimTime::from_millis(1), SimTime::from_millis(9));
        assert_eq!(s.crashes, vec![(pid(2), SimTime::from_millis(1))]);
        assert_eq!(s.restarts, vec![(pid(2), SimTime::from_millis(9))]);
    }

    #[test]
    #[should_panic(expected = "restart must follow")]
    fn down_between_validates_order() {
        let _ = Scenario::none().down_between(pid(0), SimTime::from_millis(9), SimTime::from_millis(1));
    }

    #[test]
    fn dead_forever_is_crash_at_zero() {
        let s = Scenario::none().dead_forever(pid(3));
        assert_eq!(s.crashes, vec![(pid(3), SimTime::ZERO)]);
        assert!(s.restarts.is_empty());
    }

    #[test]
    fn down_at_reflects_script() {
        let s = Scenario::none()
            .down_between(pid(1), SimTime::from_millis(10), SimTime::from_millis(50))
            .dead_forever(pid(2));
        assert_eq!(s.down_at(SimTime::from_millis(20)), vec![pid(1), pid(2)]);
        assert_eq!(s.down_at(SimTime::from_millis(60)), vec![pid(2)]);
        assert_eq!(s.down_at(SimTime::from_millis(5)), vec![pid(2)]);
    }

    #[test]
    fn referenced_pids_cover_all_fields() {
        let s = Scenario::none()
            .crash(pid(1), SimTime::ZERO)
            .restart(pid(2), SimTime::ZERO)
            .submit(pid(3), SimTime::ZERO, Value::new(0))
            .stream(
                SubmitStream::fixed_rate(SimTime::ZERO, RealDuration::from_millis(1), 2)
                    .target(StreamTarget::Fixed(pid(4))),
            );
        let pids: Vec<_> = s.referenced_pids().collect();
        assert_eq!(pids, vec![pid(1), pid(2), pid(3), pid(4)]);
    }

    #[test]
    fn kv_encoding_roundtrips() {
        let v = kv_command(700, 123_456);
        assert_eq!(kv_id(v), 123_456);
        assert_eq!(kv_key(v), 700);
        assert_eq!(kv_key(Value::new(9)), 0, "unkeyed values have key 0");
    }

    #[test]
    #[should_panic(expected = "id field")]
    fn kv_id_overflow_rejected() {
        let _ = kv_command(0, 1 << KEY_SHIFT);
    }

    #[test]
    fn fixed_rate_stream_is_evenly_spaced() {
        let s = SubmitStream::fixed_rate(
            SimTime::from_millis(100),
            RealDuration::from_millis(10),
            4,
        );
        let cmds = s.expand(3);
        let ats: Vec<u64> = cmds.iter().map(|(at, ..)| at.as_nanos() / 1_000_000).collect();
        assert_eq!(ats, vec![100, 110, 120, 130]);
        let pids: Vec<u32> = cmds.iter().map(|(_, p, _)| p.as_u32()).collect();
        assert_eq!(pids, vec![0, 1, 2, 0], "round-robin over n=3");
        let ids: Vec<u64> = cmds.iter().map(|(.., v)| kv_id(*v)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn poisson_stream_is_deterministic_and_ordered() {
        let s = SubmitStream::poisson(SimTime::ZERO, RealDuration::from_millis(5), 50)
            .seed(7)
            .keyed(16);
        let a = s.expand(5);
        let b = s.expand(5);
        assert_eq!(a, b, "same spec, same expansion");
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "arrival-ordered");
        assert!(a.iter().all(|(.., v)| kv_key(*v) < 16));
        // Distinct seeds give distinct schedules.
        assert_ne!(a, s.clone().seed(8).expand(5));
        // The mean gap is in the right ballpark (loose: 50 samples).
        let span = a.last().unwrap().0.as_millis_f64();
        assert!(span > 50.0 && span < 800.0, "span {span}ms");
    }

    #[test]
    fn uniform_dist_reproduces_the_legacy_keyed_expansion() {
        // `KeyDist::Uniform` is the default and must sample exactly as
        // the pre-KeyDist generator did (one gen_range per command), so
        // existing artifacts stay bit-identical.
        let s = SubmitStream::fixed_rate(SimTime::ZERO, RealDuration::from_millis(1), 40)
            .keyed(64)
            .seed(3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let legacy: Vec<u64> = (0..40).map(|_| rng.gen_range(0..64u64)).collect();
        let got: Vec<u64> = s.expand(3).iter().map(|(.., v)| kv_key(*v)).collect();
        assert_eq!(got, legacy);
    }

    #[test]
    fn zipfian_dist_is_deterministic_and_skewed_to_low_keys() {
        let sampler = KeySampler::new(KeyDist::Zipfian { theta: 0.99 }, 1024);
        let draw = || {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
            (0..2000u64).map(|i| sampler.sample(&mut rng, i)).collect::<Vec<_>>()
        };
        let keys = draw();
        assert_eq!(keys, draw(), "same seed, same key sequence");
        assert!(keys.iter().all(|k| *k < 1024));
        // Top 16 of 1024 keys ≈ ln(16)/ln(1024) ≈ 40% of the mass at
        // θ → 1 (a uniform draw would give them 1.6%).
        let low = keys.iter().filter(|k| **k < 16).count();
        assert!(
            low as f64 > 0.3 * keys.len() as f64,
            "zipf(0.99): the 16 hottest of 1024 keys draw ~40%, got {low}/{}",
            keys.len()
        );
    }

    #[test]
    fn hotspot_dist_concentrates_on_the_span() {
        let sampler = KeySampler::new(
            KeyDist::Hotspot { frac: 0.9, span: 64 },
            1 << 10,
        );
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let keys: Vec<u64> = (0..2000u64).map(|i| sampler.sample(&mut rng, i)).collect();
        let hot = keys.iter().filter(|k| **k < 64).count() as f64 / keys.len() as f64;
        assert!(hot > 0.85, "~90% of keys in the hot span, got {hot}");
        assert!(keys.iter().any(|k| *k >= 64), "the cold tail still appears");
    }

    #[test]
    fn shifting_dist_moves_the_hot_span_with_the_index() {
        let ks = 1u64 << 10; // width = 64
        let sampler = KeySampler::new(KeyDist::Shifting { period: 500 }, ks);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let phase = |base: u64, rng: &mut rand_chacha::ChaCha8Rng| {
            (0..500u64).map(|i| sampler.sample(rng, base + i)).collect::<Vec<_>>()
        };
        let a = phase(0, &mut rng);
        let b = phase(500, &mut rng);
        let in_span = |keys: &[u64], lo: u64, hi: u64| {
            keys.iter().filter(|k| (lo..hi).contains(*k)).count() as f64 / keys.len() as f64
        };
        assert!(in_span(&a, 0, 64) > 0.8, "phase 0 hot span at [0, 64)");
        assert!(in_span(&b, 64, 128) > 0.8, "phase 1 hot span advanced to [64, 128)");
        assert!(in_span(&b, 0, 64) < 0.2, "the old span cooled off");
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn zipf_theta_validated() {
        let _ = KeySampler::new(KeyDist::Zipfian { theta: 1.0 }, 64);
    }

    #[test]
    fn stream_ids_offset_by_base() {
        let s = SubmitStream::fixed_rate(SimTime::ZERO, RealDuration::from_millis(1), 3)
            .id_base(1000)
            .keyed(4);
        let ids: Vec<u64> = s.expand(2).iter().map(|(.., v)| kv_id(*v)).collect();
        assert_eq!(ids, vec![1000, 1001, 1002]);
    }
}
