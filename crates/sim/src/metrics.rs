//! Run reports: decision times, message counts, and the derived quantities
//! the experiments tabulate — plus the steady-state workload instruments
//! ([`LatencyHistogram`], [`ThroughputTimeline`], [`WorkloadSummary`]) that
//! the `esync-workload` drivers fill from per-command commit records.

use crate::time::SimTime;
use esync_core::time::RealDuration;
use esync_core::types::{ProcessId, ShardId, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One committed command observed at one process (a single
/// `Action::Decide`). The world records these for every run; workload
/// drivers turn them into latency and throughput measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitRecord {
    /// When the command was applied.
    pub at: SimTime,
    /// The applying process.
    pub pid: ProcessId,
    /// The log-group shard the command committed in
    /// ([`ShardId::ZERO`] for single-instance protocols).
    pub shard: ShardId,
    /// The command.
    pub value: Value,
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Protocol name (from [`esync_core::outbox::Protocol::name`]).
    pub protocol: String,
    /// Number of processes.
    pub n: usize,
    /// The run's seed.
    pub seed: u64,
    /// The stabilization time.
    pub ts: SimTime,
    /// The message-delay bound.
    pub delta: RealDuration,
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// Per-process decision instants.
    pub decided_at: Vec<Option<SimTime>>,
    /// Per-process decided values.
    pub decisions: Vec<Option<Value>>,
    /// Per-process liveness at the end of the run.
    pub alive_at_end: Vec<bool>,
    /// Whether each process ever started.
    pub started: Vec<bool>,
    /// Applied crash instants per process.
    pub crashes: Vec<Vec<SimTime>>,
    /// Applied restart instants per process.
    pub restarts: Vec<Vec<SimTime>>,
    /// Initial values proposed.
    pub initial_values: Vec<Value>,
    /// Total protocol messages handed to the network.
    pub msgs_sent: u64,
    /// Messages handed to the network at or after `TS`.
    pub msgs_sent_after_ts: u64,
    /// Messages by protocol-defined kind.
    pub msgs_by_kind: BTreeMap<String, u64>,
    /// Messages dropped (network loss or dead destination).
    pub msgs_dropped: u64,
    /// Events processed.
    pub events: u64,
}

impl Report {
    /// **Agreement**: no two processes decided differently.
    pub fn agreement(&self) -> bool {
        let mut seen: Option<Value> = None;
        for d in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(*d),
                Some(v) if v != *d => return false,
                _ => {}
            }
        }
        true
    }

    /// **Validity**: every decided value was somebody's initial value.
    pub fn validity(&self) -> bool {
        self.decisions
            .iter()
            .flatten()
            .all(|d| self.initial_values.contains(d))
    }

    /// The (agreed) decided value, if anyone decided.
    pub fn decided_value(&self) -> Option<Value> {
        self.decisions.iter().flatten().next().copied()
    }

    /// Whether every process alive at the end has decided.
    pub fn all_alive_decided(&self) -> bool {
        (0..self.n).all(|i| !(self.alive_at_end[i] && self.started[i]) || self.decisions[i].is_some())
    }

    /// Decision delay after `TS` for one process (`None` if undecided).
    /// Decisions *before* `TS` count as zero delay.
    pub fn decision_after_ts(&self, pid: ProcessId) -> Option<RealDuration> {
        self.decided_at[pid.as_usize()].map(|t| t.saturating_since(self.ts))
    }

    /// The worst decision delay after `TS` over processes alive at the end,
    /// excluding processes that restarted after `TS` (whose bound is
    /// relative to their restart; see [`Report::decision_after_restart`]).
    pub fn max_decision_after_ts(&self) -> Option<RealDuration> {
        let mut worst: Option<RealDuration> = None;
        for i in 0..self.n {
            if !self.alive_at_end[i] || !self.started[i] {
                continue;
            }
            // Restarted after TS? Their clock starts at the restart.
            if self.restarts[i].iter().any(|t| *t > self.ts) {
                continue;
            }
            let d = self.decided_at[i]?.saturating_since(self.ts);
            worst = Some(worst.map_or(d, |w| w.max(d)));
        }
        worst
    }

    /// [`Report::max_decision_after_ts`] in units of `δ`.
    pub fn max_decision_after_ts_in_delta(&self) -> Option<f64> {
        self.max_decision_after_ts()
            .map(|d| d.as_nanos() as f64 / self.delta.as_nanos() as f64)
    }

    /// Decision delay after the process's **last restart** (experiment E4).
    /// `None` if it never restarted or never decided.
    pub fn decision_after_restart(&self, pid: ProcessId) -> Option<RealDuration> {
        let decided = self.decided_at[pid.as_usize()]?;
        let last_restart = *self.restarts[pid.as_usize()].last()?;
        Some(decided.saturating_since(last_restart))
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: n={} seed={} decided={}/{} agree={} valid={} max(decide-TS)={:.2}δ msgs={} (post-TS {})",
            self.protocol,
            self.n,
            self.seed,
            self.decisions.iter().flatten().count(),
            self.n,
            self.agreement(),
            self.validity(),
            self.max_decision_after_ts_in_delta().unwrap_or(f64::NAN),
            self.msgs_sent,
            self.msgs_sent_after_ts,
        )
    }
}

pub use esync_trace::{HistogramSummary, LatencyHistogram, PhaseLatency};

/// Commits-per-window timeline: fixed-width windows from time zero, so
/// throughput dips (e.g. around the stabilization time) are visible in
/// artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThroughputTimeline {
    window: RealDuration,
    counts: Vec<u64>,
}

impl ThroughputTimeline {
    /// Creates a timeline with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: RealDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        ThroughputTimeline {
            window,
            counts: Vec::new(),
        }
    }

    /// Counts one commit at `at`.
    pub fn record(&mut self, at: SimTime) {
        let idx = (at.as_nanos() / self.window.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The window width.
    pub fn window(&self) -> RealDuration {
        self.window
    }

    /// Commits per window, from time zero.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The peak commits-per-window observed.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// Per-shard slice of a workload run (artifact schema v3): the commit
/// feed is shard-tagged end to end, so throughput and latency attribute
/// exactly. An unsharded run reports one entry for [`ShardId::ZERO`]
/// whose counts and latency histograms equal the aggregate's (the
/// *span*-derived `commits_per_sec` can differ when submissions never
/// commit — see that field).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// The shard index.
    pub shard: u32,
    /// (v5) Commands the protocol's router dispatched to this shard,
    /// summed across processes — client submissions plus forwards,
    /// *before* dedup, so retry pressure shows up as load. Zero when the
    /// driver provided no load counters.
    #[serde(default)]
    pub submitted: u64,
    /// (v5) Commands freshly admitted by this shard after retry dedup,
    /// summed across processes. Zero when the driver provided no load
    /// counters.
    #[serde(default)]
    pub admitted: u64,
    /// Distinct commands whose first commit landed in this shard.
    pub committed: u64,
    /// Extra commits of already-committed ids observed in this shard.
    pub duplicate_commits: u64,
    /// `committed` over the shard's own measured span: first submission
    /// of a command this shard *committed* → the shard's last
    /// first-commit. Commands that never commit anywhere are excluded
    /// from every shard's span (their shard is unknowable at submission),
    /// while they *do* open the aggregate's span — so on lossy runs this
    /// can exceed the aggregate `commits_per_sec` even at one shard.
    pub commits_per_sec: f64,
    /// End-to-end commit latency of this shard's commands.
    pub latency: HistogramSummary,
    /// Latency of this shard's commands submitted before stabilization.
    pub pre_ts: Option<HistogramSummary>,
    /// Latency of this shard's commands submitted at or after it.
    pub post_ts: Option<HistogramSummary>,
}

/// The steady-state workload summary a throughput experiment records per
/// sweep point: commit throughput, end-to-end latency quantiles, and the
/// pre- vs post-stabilization split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Commands submitted by the generator.
    pub submitted: u64,
    /// Distinct commands committed (first commit per command id).
    pub committed: u64,
    /// Extra commits of already-committed ids (at-least-once re-proposals
    /// across leadership changes).
    pub duplicate_commits: u64,
    /// The measurement span in simulated (or wall, for the threaded
    /// runtime) seconds: first submission to last first-commit.
    pub measured_secs: f64,
    /// `committed / measured_secs`.
    pub commits_per_sec: f64,
    /// End-to-end commit latency (submission → first commit anywhere).
    pub latency: HistogramSummary,
    /// Latency of commands submitted before the stabilization time
    /// (`None` when nothing was, or the split is not applicable).
    pub pre_ts: Option<HistogramSummary>,
    /// Latency of commands submitted at or after the stabilization time.
    pub post_ts: Option<HistogramSummary>,
    /// Commits per timeline window (window width in `timeline_window_ms`).
    pub timeline: Vec<u64>,
    /// The timeline window width, in milliseconds.
    pub timeline_window_ms: f64,
    /// The per-shard split (schema v3), ascending by shard index; never
    /// empty — an unsharded run reports one [`ShardId::ZERO`] entry
    /// mirroring the aggregate counts and latency. Absent in artifacts
    /// written before schema v3; `#[serde(default)]` so readers built
    /// against a full serde treat those as empty (the vendored offline
    /// serde serializes only and ignores the attribute).
    #[serde(default)]
    pub per_shard: Vec<ShardSummary>,
    /// (v5) The shard-imbalance ratio: the hottest shard's committed
    /// count over the per-shard mean (`max / mean`). `1.0` is perfectly
    /// balanced (and the only possible value at one shard); `S` means
    /// one shard took everything; `0.0` when nothing committed. The
    /// one-number summary the rebalancing experiments plot.
    #[serde(default)]
    pub shard_imbalance: f64,
    /// (v6) The traced queue → quorum → learn phase decomposition of
    /// this run's command journeys (see [`PhaseLatency`]). `None` —
    /// serialized as `null` — when typed tracing was disabled, which is
    /// the default: artifacts regenerated without tracing stay
    /// value-identical to pre-v6 ones modulo this field.
    #[serde(default)]
    pub phase_latency: Option<PhaseLatency>,
    /// (v7) The run's health section: the metrics snapshot time series,
    /// every online watchdog firing (live decision bound, anchor churn,
    /// stall, shard imbalance), and the trace-drop count surfaced from
    /// the collectors (see [`esync_metrics::HealthSummary`]). `None` —
    /// serialized as `null` — when metering was disabled, which is the
    /// default: artifacts regenerated without metering stay
    /// value-identical to pre-v7 ones modulo this field.
    #[serde(default)]
    pub health: Option<esync_metrics::HealthSummary>,
}

/// Aggregate statistics over a set of runs (seed sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl Stats {
    /// Computes statistics over `xs`; `None` if empty.
    pub fn over(xs: impl IntoIterator<Item = f64>) -> Option<Stats> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for x in xs {
            min = min.min(x);
            max = max.max(x);
            sum += x;
            count += 1;
        }
        (count > 0).then(|| Stats {
            min,
            max,
            mean: sum / count as f64,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_report() -> Report {
        Report {
            protocol: "test".into(),
            n: 3,
            seed: 0,
            ts: SimTime::from_millis(100),
            delta: RealDuration::from_millis(10),
            end_time: SimTime::from_millis(500),
            decided_at: vec![
                Some(SimTime::from_millis(150)),
                Some(SimTime::from_millis(160)),
                Some(SimTime::from_millis(170)),
            ],
            decisions: vec![Some(Value::new(5)); 3],
            alive_at_end: vec![true; 3],
            started: vec![true; 3],
            crashes: vec![vec![]; 3],
            restarts: vec![vec![]; 3],
            initial_values: vec![Value::new(5), Value::new(6), Value::new(7)],
            msgs_sent: 100,
            msgs_sent_after_ts: 40,
            msgs_by_kind: BTreeMap::new(),
            msgs_dropped: 3,
            events: 200,
        }
    }

    #[test]
    fn agreement_and_validity_hold() {
        let r = base_report();
        assert!(r.agreement());
        assert!(r.validity());
        assert!(r.all_alive_decided());
        assert_eq!(r.decided_value(), Some(Value::new(5)));
    }

    #[test]
    fn disagreement_detected() {
        let mut r = base_report();
        r.decisions[2] = Some(Value::new(6));
        assert!(!r.agreement());
    }

    #[test]
    fn invalid_value_detected() {
        let mut r = base_report();
        r.decisions[0] = Some(Value::new(999));
        assert!(!r.validity());
    }

    #[test]
    fn undecided_processes_allowed_in_agreement() {
        let mut r = base_report();
        r.decisions[1] = None;
        assert!(r.agreement());
        assert!(!r.all_alive_decided());
        // Dead processes do not count against completion.
        r.alive_at_end[1] = false;
        assert!(r.all_alive_decided());
    }

    #[test]
    fn max_decision_after_ts_in_delta_units() {
        let r = base_report();
        // Worst decide is 170ms, TS 100ms, delta 10ms => 7δ.
        assert_eq!(r.max_decision_after_ts_in_delta(), Some(7.0));
    }

    #[test]
    fn restarted_after_ts_excluded_from_max() {
        let mut r = base_report();
        r.restarts[2] = vec![SimTime::from_millis(120)];
        // p2 restarted post-TS: excluded; worst is now p1 at 6δ.
        assert_eq!(r.max_decision_after_ts_in_delta(), Some(6.0));
        // Its own recovery time is measured from the restart.
        assert_eq!(
            r.decision_after_restart(ProcessId::new(2)),
            Some(RealDuration::from_millis(50))
        );
    }

    #[test]
    fn pre_ts_decision_counts_as_zero_delay() {
        let mut r = base_report();
        r.decided_at = vec![Some(SimTime::from_millis(50)); 3];
        assert_eq!(r.max_decision_after_ts_in_delta(), Some(0.0));
    }

    #[test]
    fn stats_over_values() {
        let s = Stats::over([1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.count, 3);
        assert!(Stats::over(std::iter::empty()).is_none());
    }

    #[test]
    fn summary_is_informative() {
        let s = base_report().summary();
        assert!(s.contains("test"));
        assert!(s.contains("agree=true"));
    }

    // (The bucket-index inverse test moved to `esync-trace`'s hist
    // module together with the histogram internals.)

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min_ns(), Some(0));
        assert_eq!(h.max_ns(), Some(31));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(31));
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 1..=10_000 µs in ns.
        for i in 1..=10_000u64 {
            h.record(i * 1_000);
        }
        let p50 = h.quantile(0.5).unwrap() as f64;
        let p99 = h.quantile(0.99).unwrap() as f64;
        let p999 = h.quantile(0.999).unwrap() as f64;
        assert!((p50 - 5_000_000.0).abs() / 5_000_000.0 < 0.04, "p50={p50}");
        assert!((p99 - 9_900_000.0).abs() / 9_900_000.0 < 0.04, "p99={p99}");
        assert!((p999 - 9_990_000.0).abs() / 9_990_000.0 < 0.04, "p999={p999}");
        assert_eq!(h.mean_ns(), Some(5_000_500), "mean is exact, not bucketed");
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
        assert_eq!(a.summary(), c.summary());
    }

    #[test]
    fn histogram_empty_and_summary() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean_ns(), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert!(s.buckets.is_empty());
        let mut h = LatencyHistogram::new();
        h.record_duration(RealDuration::from_millis(3));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ns, 3_000_000);
        assert_eq!(s.buckets.len(), 1);
        assert_eq!(s.buckets[0].1, 1);
    }

    #[test]
    fn timeline_buckets_by_window() {
        let mut t = ThroughputTimeline::new(RealDuration::from_millis(10));
        t.record(SimTime::from_millis(1));
        t.record(SimTime::from_millis(9));
        t.record(SimTime::from_millis(10));
        t.record(SimTime::from_millis(35));
        assert_eq!(t.counts(), &[2, 1, 0, 1]);
        assert_eq!(t.peak(), 2);
    }
}
