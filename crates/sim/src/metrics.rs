//! Run reports: decision times, message counts, and the derived quantities
//! the experiments tabulate.

use crate::time::SimTime;
use esync_core::time::RealDuration;
use esync_core::types::{ProcessId, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Protocol name (from [`esync_core::outbox::Protocol::name`]).
    pub protocol: String,
    /// Number of processes.
    pub n: usize,
    /// The run's seed.
    pub seed: u64,
    /// The stabilization time.
    pub ts: SimTime,
    /// The message-delay bound.
    pub delta: RealDuration,
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// Per-process decision instants.
    pub decided_at: Vec<Option<SimTime>>,
    /// Per-process decided values.
    pub decisions: Vec<Option<Value>>,
    /// Per-process liveness at the end of the run.
    pub alive_at_end: Vec<bool>,
    /// Whether each process ever started.
    pub started: Vec<bool>,
    /// Applied crash instants per process.
    pub crashes: Vec<Vec<SimTime>>,
    /// Applied restart instants per process.
    pub restarts: Vec<Vec<SimTime>>,
    /// Initial values proposed.
    pub initial_values: Vec<Value>,
    /// Total protocol messages handed to the network.
    pub msgs_sent: u64,
    /// Messages handed to the network at or after `TS`.
    pub msgs_sent_after_ts: u64,
    /// Messages by protocol-defined kind.
    pub msgs_by_kind: BTreeMap<String, u64>,
    /// Messages dropped (network loss or dead destination).
    pub msgs_dropped: u64,
    /// Events processed.
    pub events: u64,
}

impl Report {
    /// **Agreement**: no two processes decided differently.
    pub fn agreement(&self) -> bool {
        let mut seen: Option<Value> = None;
        for d in self.decisions.iter().flatten() {
            match seen {
                None => seen = Some(*d),
                Some(v) if v != *d => return false,
                _ => {}
            }
        }
        true
    }

    /// **Validity**: every decided value was somebody's initial value.
    pub fn validity(&self) -> bool {
        self.decisions
            .iter()
            .flatten()
            .all(|d| self.initial_values.contains(d))
    }

    /// The (agreed) decided value, if anyone decided.
    pub fn decided_value(&self) -> Option<Value> {
        self.decisions.iter().flatten().next().copied()
    }

    /// Whether every process alive at the end has decided.
    pub fn all_alive_decided(&self) -> bool {
        (0..self.n).all(|i| !(self.alive_at_end[i] && self.started[i]) || self.decisions[i].is_some())
    }

    /// Decision delay after `TS` for one process (`None` if undecided).
    /// Decisions *before* `TS` count as zero delay.
    pub fn decision_after_ts(&self, pid: ProcessId) -> Option<RealDuration> {
        self.decided_at[pid.as_usize()].map(|t| t.saturating_since(self.ts))
    }

    /// The worst decision delay after `TS` over processes alive at the end,
    /// excluding processes that restarted after `TS` (whose bound is
    /// relative to their restart; see [`Report::decision_after_restart`]).
    pub fn max_decision_after_ts(&self) -> Option<RealDuration> {
        let mut worst: Option<RealDuration> = None;
        for i in 0..self.n {
            if !self.alive_at_end[i] || !self.started[i] {
                continue;
            }
            // Restarted after TS? Their clock starts at the restart.
            if self.restarts[i].iter().any(|t| *t > self.ts) {
                continue;
            }
            let d = self.decided_at[i]?.saturating_since(self.ts);
            worst = Some(worst.map_or(d, |w| w.max(d)));
        }
        worst
    }

    /// [`Report::max_decision_after_ts`] in units of `δ`.
    pub fn max_decision_after_ts_in_delta(&self) -> Option<f64> {
        self.max_decision_after_ts()
            .map(|d| d.as_nanos() as f64 / self.delta.as_nanos() as f64)
    }

    /// Decision delay after the process's **last restart** (experiment E4).
    /// `None` if it never restarted or never decided.
    pub fn decision_after_restart(&self, pid: ProcessId) -> Option<RealDuration> {
        let decided = self.decided_at[pid.as_usize()]?;
        let last_restart = *self.restarts[pid.as_usize()].last()?;
        Some(decided.saturating_since(last_restart))
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: n={} seed={} decided={}/{} agree={} valid={} max(decide-TS)={:.2}δ msgs={} (post-TS {})",
            self.protocol,
            self.n,
            self.seed,
            self.decisions.iter().flatten().count(),
            self.n,
            self.agreement(),
            self.validity(),
            self.max_decision_after_ts_in_delta().unwrap_or(f64::NAN),
            self.msgs_sent,
            self.msgs_sent_after_ts,
        )
    }
}

/// Aggregate statistics over a set of runs (seed sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl Stats {
    /// Computes statistics over `xs`; `None` if empty.
    pub fn over(xs: impl IntoIterator<Item = f64>) -> Option<Stats> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for x in xs {
            min = min.min(x);
            max = max.max(x);
            sum += x;
            count += 1;
        }
        (count > 0).then(|| Stats {
            min,
            max,
            mean: sum / count as f64,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_report() -> Report {
        Report {
            protocol: "test".into(),
            n: 3,
            seed: 0,
            ts: SimTime::from_millis(100),
            delta: RealDuration::from_millis(10),
            end_time: SimTime::from_millis(500),
            decided_at: vec![
                Some(SimTime::from_millis(150)),
                Some(SimTime::from_millis(160)),
                Some(SimTime::from_millis(170)),
            ],
            decisions: vec![Some(Value::new(5)); 3],
            alive_at_end: vec![true; 3],
            started: vec![true; 3],
            crashes: vec![vec![]; 3],
            restarts: vec![vec![]; 3],
            initial_values: vec![Value::new(5), Value::new(6), Value::new(7)],
            msgs_sent: 100,
            msgs_sent_after_ts: 40,
            msgs_by_kind: BTreeMap::new(),
            msgs_dropped: 3,
            events: 200,
        }
    }

    #[test]
    fn agreement_and_validity_hold() {
        let r = base_report();
        assert!(r.agreement());
        assert!(r.validity());
        assert!(r.all_alive_decided());
        assert_eq!(r.decided_value(), Some(Value::new(5)));
    }

    #[test]
    fn disagreement_detected() {
        let mut r = base_report();
        r.decisions[2] = Some(Value::new(6));
        assert!(!r.agreement());
    }

    #[test]
    fn invalid_value_detected() {
        let mut r = base_report();
        r.decisions[0] = Some(Value::new(999));
        assert!(!r.validity());
    }

    #[test]
    fn undecided_processes_allowed_in_agreement() {
        let mut r = base_report();
        r.decisions[1] = None;
        assert!(r.agreement());
        assert!(!r.all_alive_decided());
        // Dead processes do not count against completion.
        r.alive_at_end[1] = false;
        assert!(r.all_alive_decided());
    }

    #[test]
    fn max_decision_after_ts_in_delta_units() {
        let r = base_report();
        // Worst decide is 170ms, TS 100ms, delta 10ms => 7δ.
        assert_eq!(r.max_decision_after_ts_in_delta(), Some(7.0));
    }

    #[test]
    fn restarted_after_ts_excluded_from_max() {
        let mut r = base_report();
        r.restarts[2] = vec![SimTime::from_millis(120)];
        // p2 restarted post-TS: excluded; worst is now p1 at 6δ.
        assert_eq!(r.max_decision_after_ts_in_delta(), Some(6.0));
        // Its own recovery time is measured from the restart.
        assert_eq!(
            r.decision_after_restart(ProcessId::new(2)),
            Some(RealDuration::from_millis(50))
        );
    }

    #[test]
    fn pre_ts_decision_counts_as_zero_delay() {
        let mut r = base_report();
        r.decided_at = vec![Some(SimTime::from_millis(50)); 3];
        assert_eq!(r.max_decision_after_ts_in_delta(), Some(0.0));
    }

    #[test]
    fn stats_over_values() {
        let s = Stats::over([1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.count, 3);
        assert!(Stats::over(std::iter::empty()).is_none());
    }

    #[test]
    fn summary_is_informative() {
        let s = base_report().summary();
        assert!(s.contains("test"));
        assert!(s.contains("agree=true"));
    }
}
