//! Named worst-case constructions from the paper.
//!
//! These builders stage the executions the paper's arguments quantify over:
//!
//! * [`obsolete_ballots_traditional`] — §2's `O(Nδ)` pathology. Before
//!   `TS`, a process that believes itself leader can raise its ballot
//!   arbitrarily high *without communicating* (Start Phase 1 needs only
//!   self-belief), and its phase 1a messages can linger in the network
//!   arbitrarily long. The adversary releases `k ≤ ⌈N/2⌉−1` such obsolete
//!   1a messages one at a time, spaced `gap` apart, aimed at the live
//!   leader: each one bumps `mbal[q]` past the leader's own in-flight
//!   ballot, whose 1b replies then no longer match `mbal[q]` — the attempt
//!   dies and `q` must "choose a larger value of `mbal[q]`". Because each
//!   obsolete ballot is revealed only when released, the leader pays one
//!   restart per ballot: `O(k·δ)` in total.
//! * [`obsolete_ballots_session`] — the same adversary against the
//!   *modified* algorithm. Session gating caps what a failed process could
//!   legitimately have sent at **session `s0+1`** (proof step 1), so the
//!   strongest injectable ballots are in session 1 when the nonfaulty
//!   majority rests in session 0 — a single bounded disruption instead of
//!   `k` unbounded ones.
//! * [`dead_coordinators`] — §3's `O(Nδ)` pathology for rotating-
//!   coordinator algorithms: the `f = ⌈N/2⌉−1` lowest-id processes are
//!   dead forever, so rounds `0..f` each burn a timeout before a live
//!   coordinator is reached.
//! * [`staggered_restarts`] — processes crash before `TS` and restart one
//!   by one after it (experiment E4's recovery sweep).

use crate::scenario::Scenario;
use crate::time::SimTime;
use esync_core::ballot::Ballot;
use esync_core::paxos::messages::PaxosMsg;
use esync_core::paxos::traditional::TradMsg;
use esync_core::time::RealDuration;
use esync_core::types::ProcessId;

/// One message the adversary releases: `(deliver_at, from, to, msg)`.
pub type Injection<M> = (SimTime, ProcessId, ProcessId, M);

/// The §2 obsolete-ballot attack against traditional Paxos.
///
/// Produces `count` phase-1a messages with strictly increasing,
/// anomalously high ballots owned by process `n−1` (the claimed failed
/// sender), delivered to `victim` at `start, start+gap, …`.
///
/// # Panics
///
/// Panics if `n < 2` or the victim is out of range.
pub fn obsolete_ballots_traditional(
    n: usize,
    count: usize,
    start: SimTime,
    gap: RealDuration,
    victim: ProcessId,
) -> Vec<Injection<TradMsg>> {
    assert!(n >= 2, "attack needs a sender and a victim");
    assert!(victim.as_usize() < n, "victim out of range");
    let owner = ProcessId::new(n as u32 - 1);
    (0..count)
        .map(|i| {
            // Sessions 1000, 2000, 3000, …: each release is far above
            // anything the leader can have reached meanwhile through its
            // own minimal ballot bumps, so every release kills the current
            // attempt (the pre-TS leader could raise its ballot arbitrarily,
            // so these are all legitimately reachable).
            let mbal =
                Ballot::new(1_000 * (i as u64 + 1) * n as u64 + owner.as_u32() as u64);
            (
                start + gap * i as u64,
                owner,
                victim,
                TradMsg::Paxos(PaxosMsg::P1a { mbal }),
            )
        })
        .collect()
}

/// The strongest *legitimate* version of the same attack against the
/// modified algorithm: with the nonfaulty majority in session 0, no failed
/// process can ever have sent a ballot beyond session 1 (proof step 1), so
/// that is what the adversary injects.
///
/// # Panics
///
/// Panics if `n < 2` or the victim is out of range.
pub fn obsolete_ballots_session(
    n: usize,
    count: usize,
    start: SimTime,
    gap: RealDuration,
    victim: ProcessId,
) -> Vec<Injection<PaxosMsg>> {
    assert!(n >= 2, "attack needs a sender and a victim");
    assert!(victim.as_usize() < n, "victim out of range");
    let owner = ProcessId::new(n as u32 - 1);
    let mbal = Ballot::new(n as u64 + owner.as_u32() as u64); // session 1
    (0..count)
        .map(|i| (start + gap * i as u64, owner, victim, PaxosMsg::P1a { mbal }))
        .collect()
}

/// §3's worst case for rotating coordinators: the `f` lowest-id processes
/// (the coordinators of rounds `0..f`) are dead forever.
pub fn dead_coordinators(f: usize) -> Scenario {
    let mut s = Scenario::none();
    for pid in ProcessId::all(f) {
        s = s.dead_forever(pid);
    }
    s
}

/// Crashes each process in `pids` at `down_at` and restarts them one by
/// one at `first_up, first_up+gap, …` (all restart times may be after
/// `TS`; restarted processes stay up).
pub fn staggered_restarts(
    pids: impl IntoIterator<Item = ProcessId>,
    down_at: SimTime,
    first_up: SimTime,
    gap: RealDuration,
) -> Scenario {
    let mut s = Scenario::none();
    for (i, pid) in pids.into_iter().enumerate() {
        s = s.down_between(pid, down_at, first_up + gap * i as u64);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_injections_increase_and_space_out() {
        let inj = obsolete_ballots_traditional(
            5,
            3,
            SimTime::from_millis(100),
            RealDuration::from_millis(30),
            ProcessId::new(1),
        );
        assert_eq!(inj.len(), 3);
        let mut last_ballot = Ballot::new(0);
        for (i, (at, from, to, msg)) in inj.iter().enumerate() {
            assert_eq!(*at, SimTime::from_millis(100 + 30 * i as u64));
            assert_eq!(*from, ProcessId::new(4));
            assert_eq!(*to, ProcessId::new(1));
            match msg {
                TradMsg::Paxos(PaxosMsg::P1a { mbal }) => {
                    assert!(*mbal > last_ballot);
                    assert_eq!(mbal.owner(5), ProcessId::new(4));
                    last_ballot = *mbal;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn session_injections_stay_in_session_one() {
        let inj = obsolete_ballots_session(
            5,
            3,
            SimTime::from_millis(100),
            RealDuration::from_millis(30),
            ProcessId::new(1),
        );
        for (_, _, _, msg) in &inj {
            match msg {
                PaxosMsg::P1a { mbal } => {
                    assert_eq!(mbal.session(5).get(), 1, "gating caps obsolete sessions");
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn dead_coordinators_kill_a_prefix() {
        let s = dead_coordinators(3);
        assert_eq!(s.crashes.len(), 3);
        assert!(s
            .crashes
            .iter()
            .all(|(p, t)| p.as_usize() < 3 && *t == SimTime::ZERO));
        assert!(s.restarts.is_empty());
    }

    #[test]
    fn staggered_restarts_space_out() {
        let s = staggered_restarts(
            [ProcessId::new(1), ProcessId::new(2)],
            SimTime::from_millis(10),
            SimTime::from_millis(200),
            RealDuration::from_millis(50),
        );
        assert_eq!(s.crashes.len(), 2);
        assert_eq!(
            s.restarts,
            vec![
                (ProcessId::new(1), SimTime::from_millis(200)),
                (ProcessId::new(2), SimTime::from_millis(250)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "victim out of range")]
    fn victim_validated() {
        let _ = obsolete_ballots_traditional(
            3,
            1,
            SimTime::ZERO,
            RealDuration::from_millis(1),
            ProcessId::new(9),
        );
    }
}
