//! Simulated (real) time.
//!
//! [`SimTime`] is an instant of *real* time in the simulation, in
//! nanoseconds since the start of the run. Real durations reuse
//! [`esync_core::time::RealDuration`]; process-local clock readings are
//! [`esync_core::time::LocalInstant`]s produced by
//! [`crate::clock::DriftClock`].

use core::fmt;
use core::ops::{Add, Sub};
use esync_core::time::RealDuration;
use serde::{Deserialize, Serialize};

/// An instant of simulated real time (nanoseconds since run start).
///
/// ```
/// use esync_sim::time::SimTime;
/// use esync_core::time::RealDuration;
///
/// let t = SimTime::from_millis(5) + RealDuration::from_millis(10);
/// assert_eq!(t.as_nanos(), 15_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the run.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since run start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since run start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since run start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since run start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Milliseconds since run start, fractional.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// The span since an earlier instant, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> RealDuration {
        RealDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The span since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is actually later than `self`.
    pub fn since(self, earlier: SimTime) -> RealDuration {
        RealDuration::from_nanos(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` is later than `self`"),
        )
    }
}

impl Add<RealDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: RealDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.as_nanos()).expect("time overflow"))
    }
}

impl Sub<RealDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: RealDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.as_nanos()).expect("time underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn arithmetic_with_real_durations() {
        let t = SimTime::from_millis(10);
        let d = RealDuration::from_millis(3);
        assert_eq!((t + d).as_nanos(), 13_000_000);
        assert_eq!((t - d).as_nanos(), 7_000_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.saturating_since(t + d), RealDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::ZERO, SimTime::from_nanos(0));
    }

    #[test]
    #[should_panic(expected = "later")]
    fn since_panics_when_reversed() {
        let _ = SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(10).to_string(), "t=10.000ms");
    }
}
