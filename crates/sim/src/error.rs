//! Simulator error types.

use crate::time::SimTime;
use core::fmt;
use esync_core::error::ConfigError;
use esync_core::types::ProcessId;

/// Errors from configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The embedded timing configuration was invalid.
    Config(ConfigError),
    /// The run hit its safety horizon before completing.
    Timeout {
        /// The horizon that was reached.
        at: SimTime,
    },
    /// A crash was scheduled after the stabilization time, which the model
    /// forbids ("after time TS no process fails").
    CrashAfterStability {
        /// The crashing process.
        pid: ProcessId,
        /// The scheduled crash time.
        at: SimTime,
        /// The stabilization time.
        ts: SimTime,
    },
    /// A scenario referenced a process outside `0..N`.
    NoSuchProcess {
        /// The offending id.
        pid: ProcessId,
        /// The system size.
        n: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid timing configuration: {e}"),
            SimError::Timeout { at } => {
                write!(f, "simulation did not complete by its horizon ({at})")
            }
            SimError::CrashAfterStability { pid, at, ts } => write!(
                f,
                "scenario crashes {pid} at {at}, after stability ({ts}); the model forbids post-TS failures"
            ),
            SimError::NoSuchProcess { pid, n } => {
                write!(f, "scenario references {pid} but the system has n={n} processes")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::Timeout {
            at: SimTime::from_millis(10),
        };
        assert!(e.to_string().contains("horizon"));
        let e = SimError::CrashAfterStability {
            pid: ProcessId::new(1),
            at: SimTime::from_millis(10),
            ts: SimTime::from_millis(5),
        };
        assert!(e.to_string().contains("forbids"));
    }

    #[test]
    fn config_error_is_source() {
        use std::error::Error;
        let e = SimError::from(ConfigError::ZeroDelta);
        assert!(e.source().is_some());
    }
}
