//! The simulation world: binds protocol state machines to the network,
//! clocks, oracles and fault script.

use crate::clock::DriftClock;
use crate::error::SimError;
use crate::event::{EventKind, EventQueue, MsgPayload};
use crate::metrics::{CommitRecord, Report};
use crate::network::{Delivery, Network, PreStability};
use crate::oracle::{plan_wab_delivery, LeaderOracle};
use crate::scenario::Scenario;
use crate::time::SimTime;
use esync_core::config::TimingConfig;
use esync_core::metrics::Metric;
use esync_core::outbox::{Action, Outbox, Process, Protocol};
use esync_core::time::RealDuration;
use esync_core::types::{ProcessId, ShardId, TimerId, Value};
use esync_metrics::{MetricsSnapshot, WatchdogConfig, WatchdogFiring, Watchdogs};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::sync::Arc;

/// Full configuration of one simulated run.
///
/// Serializes (to JSON) so that benchmark artifacts can embed the exact
/// configuration every number was produced from.
#[derive(Debug, Clone, Serialize)]
pub struct SimConfig {
    /// The protocol-visible timing parameters (`N`, `δ`, `σ`, `ε`, `ρ`).
    pub timing: TimingConfig,
    /// The stabilization time `TS` (unknown to processes).
    pub ts: SimTime,
    /// PRNG seed; every run is a deterministic function of it.
    pub seed: u64,
    /// Pre-`TS` network behaviour.
    pub pre: PreStability,
    /// Post-`TS` delays, as fractions of `δ` (default `[0.1, 1.0]`).
    pub post_delay_range: (f64, f64),
    /// Safety horizon: the run errors out if it passes this time.
    pub max_time: SimTime,
    /// Run the idealized leader-election oracle (traditional Paxos).
    pub leader_oracle: bool,
    /// Oracle announcement delay after `TS` (default `2δ`).
    pub leader_announce_after: RealDuration,
    /// Initial values; defaults to `100 + i` for process `i`.
    pub initial_values: Option<Vec<Value>>,
    /// Fault and workload script.
    pub scenario: Scenario,
}

impl SimConfig {
    /// Starts building a configuration for `n` processes.
    pub fn builder(n: usize) -> SimConfigBuilder {
        SimConfigBuilder {
            n,
            delta: RealDuration::from_millis(10),
            sigma: None,
            epsilon: None,
            rho: 1e-3,
            ts: SimTime::from_millis(300),
            seed: 0,
            pre: PreStability::chaos(),
            post_delay_range: (0.1, 1.0),
            max_time: SimTime::from_secs(120),
            leader_oracle: false,
            leader_announce_after: None,
            initial_values: None,
            scenario: Scenario::none(),
        }
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    n: usize,
    delta: RealDuration,
    sigma: Option<RealDuration>,
    epsilon: Option<RealDuration>,
    rho: f64,
    ts: SimTime,
    seed: u64,
    pre: PreStability,
    post_delay_range: (f64, f64),
    max_time: SimTime,
    leader_oracle: bool,
    leader_announce_after: Option<RealDuration>,
    initial_values: Option<Vec<Value>>,
    scenario: Scenario,
}

impl SimConfigBuilder {
    /// Sets the message-delay bound `δ` (default 10ms).
    pub fn delta(mut self, delta: RealDuration) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the session-timer bound `σ` (default: minimum admissible).
    pub fn sigma(mut self, sigma: RealDuration) -> Self {
        self.sigma = Some(sigma);
        self
    }

    /// Sets the retransmission interval `ε` (default `δ/4`).
    pub fn epsilon(mut self, epsilon: RealDuration) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Sets the clock-rate error bound `ρ` (default `10⁻³`).
    pub fn rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Sets the stabilization time `TS` (default 300ms).
    pub fn stability_at(mut self, ts: SimTime) -> Self {
        self.ts = ts;
        self
    }

    /// Sets `TS` in milliseconds.
    pub fn stability_at_millis(self, ms: u64) -> Self {
        self.stability_at(SimTime::from_millis(ms))
    }

    /// Sets the seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the pre-stability policy (default [`PreStability::chaos`]).
    pub fn pre_stability(mut self, pre: PreStability) -> Self {
        self.pre = pre;
        self
    }

    /// Sets post-stability delays as fractions of `δ` (default `[0.1,1.0]`).
    pub fn post_delay_range(mut self, range: (f64, f64)) -> Self {
        self.post_delay_range = range;
        self
    }

    /// Sets the safety horizon (default 120s).
    pub fn max_time(mut self, max: SimTime) -> Self {
        self.max_time = max;
        self
    }

    /// Enables the idealized leader-election oracle.
    pub fn leader_oracle(mut self, enabled: bool) -> Self {
        self.leader_oracle = enabled;
        self
    }

    /// Sets the oracle announcement delay after `TS` (default `2δ`).
    pub fn leader_announce_after(mut self, d: RealDuration) -> Self {
        self.leader_announce_after = Some(d);
        self
    }

    /// Sets explicit initial values (defaults to `100 + i`).
    pub fn initial_values(mut self, values: Vec<Value>) -> Self {
        self.initial_values = Some(values);
        self
    }

    /// Sets the fault/workload script.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for invalid timing parameters,
    /// [`SimError::NoSuchProcess`] for out-of-range scenario pids, and
    /// [`SimError::CrashAfterStability`] if the script violates the "no
    /// failures after `TS`" assumption.
    pub fn build(self) -> Result<SimConfig, SimError> {
        let mut b = TimingConfig::builder(self.n);
        b.delta(self.delta).rho(self.rho);
        if let Some(s) = self.sigma {
            b.sigma(s);
        }
        if let Some(e) = self.epsilon {
            b.epsilon(e);
        }
        let timing = b.build()?;
        for pid in self.scenario.referenced_pids() {
            if pid.as_usize() >= self.n {
                return Err(SimError::NoSuchProcess { pid, n: self.n });
            }
        }
        for &(pid, at) in &self.scenario.crashes {
            if at > self.ts {
                return Err(SimError::CrashAfterStability {
                    pid,
                    at,
                    ts: self.ts,
                });
            }
        }
        Ok(SimConfig {
            timing,
            ts: self.ts,
            seed: self.seed,
            pre: self.pre,
            post_delay_range: self.post_delay_range,
            max_time: self.max_time,
            leader_oracle: self.leader_oracle,
            leader_announce_after: self
                .leader_announce_after
                .unwrap_or(self.delta * 2),
            initial_values: self.initial_values,
            scenario: self.scenario,
        })
    }
}

/// Per-timer bookkeeping enabling *lazy re-arming*.
///
/// Protocols re-arm timers constantly (the session timer resets on every
/// message). Pushing a heap event per re-arm floods the queue with stale
/// `TimerFire`s. Instead, each slot remembers its armed deadline; a re-arm
/// only pushes a heap event when no pending event fires early enough, and
/// a stale pop re-pushes for the currently armed deadline. The timer still
/// fires at exactly its armed instant.
#[derive(Debug, Clone, Copy, Default)]
struct TimerSlot {
    /// Bumped on every (re-)arm, cancel, and crash; a popped `TimerFire`
    /// only fires if its epoch is current.
    epoch: u64,
    /// The deadline the protocol most recently armed, if any.
    armed_at: Option<SimTime>,
    /// Firing time of the earliest pending heap event for this timer
    /// (an event is guaranteed to pop at or before `armed_at` while armed).
    next_pending: Option<SimTime>,
}

/// A fixed-capacity bitset over process indices — the structure-of-arrays
/// home of the event loop's hottest per-process flags. One cache line
/// covers 512 processes, so the per-event liveness check (`alive? started?`)
/// and the completion-scan debug assertion never touch the cold
/// `ProcHarness` (protocol state, clocks, fault history).
#[derive(Debug, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Clears all bits and resizes to cover `n` indices.
    fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    fn set(&mut self, i: usize, v: bool) {
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }
}

/// Per-process runtime envelope — the **cold** side of the per-process
/// state. The hot flags (`alive`, `started`) and the decision instants
/// live in parallel arrays on the [`World`] itself (see [`BitSet`]), so
/// the event loop only dereferences a harness when it actually runs the
/// process.
#[derive(Debug)]
struct ProcHarness<Proc> {
    proc: Proc,
    clock: DriftClock,
    /// Timer slots, indexed by `TimerId::get()`. Protocols use single-digit
    /// constant ids, so this stays tiny and cache-resident.
    timers: Vec<TimerSlot>,
    decided_value: Option<Value>,
    crash_times: Vec<SimTime>,
    restart_times: Vec<SimTime>,
}

impl<Proc> ProcHarness<Proc> {
    fn timer_slot(&mut self, timer: TimerId) -> &mut TimerSlot {
        let idx = timer.get() as usize;
        if idx >= self.timers.len() {
            self.timers.resize(idx + 1, TimerSlot::default());
        }
        &mut self.timers[idx]
    }
}

/// Live metrics state ([`World::enable_metrics`]): the snapshot cadence,
/// the collected series, and the online watchdog evaluator. The counters
/// themselves live in the scratch outbox's passive
/// [`MetricSet`](esync_core::metrics::MetricSet) — one cluster-wide
/// registry, since one scratch outbox serves every process.
#[derive(Debug)]
struct MetricsState {
    interval: RealDuration,
    next_at: SimTime,
    watchdogs: Watchdogs,
    snapshots: Vec<MetricsSnapshot>,
    firings: Vec<WatchdogFiring>,
}

/// A deterministic run of one protocol under one configuration.
#[derive(Debug)]
pub struct World<P: Protocol> {
    cfg: SimConfig,
    protocol: P,
    procs: Vec<ProcHarness<P::Process>>,
    /// Hot per-process flags as parallel bitsets (SoA): checked on every
    /// deliver/timer/submit before the harness is touched.
    alive: BitSet,
    started: BitSet,
    /// Per-process first-decision instants, parallel to `procs`.
    decided_at: Vec<Option<SimTime>>,
    queue: EventQueue<P::Msg>,
    network: Network,
    rng: ChaCha8Rng,
    now: SimTime,
    leader: LeaderOracle,
    initial_values: Vec<Value>,
    /// Count of processes that are alive, started and undecided — the O(1)
    /// half of the completion check.
    live_undecided: usize,
    msgs_sent: u64,
    msgs_sent_after_ts: u64,
    /// Per-kind message counts. Protocols have a handful of kinds, so a
    /// linear scan over this Vec beats a map lookup per sent message.
    msgs_by_kind: Vec<(&'static str, u64)>,
    msgs_dropped: u64,
    events: u64,
    /// Every `Action::Decide` with its instant — one record per command
    /// per process for multi-instance protocols (the workload drivers'
    /// measurement feed), one per process for single-shot ones.
    commits: Vec<CommitRecord>,
    /// Reused outbox: one action buffer for the whole run instead of one
    /// allocation per event.
    scratch: Outbox<P::Msg>,
    trace: Option<Vec<String>>,
    /// The typed trace collector ([`World::enable_typed_trace`]); the
    /// scratch outbox's tracing flag is on exactly while this is `Some`.
    typed_trace: Option<esync_trace::TraceBuffer>,
    /// Metrics snapshots and watchdogs ([`World::enable_metrics`]); the
    /// scratch outbox's metering flag is on exactly while this is `Some`.
    metrics: Option<MetricsState>,
}

impl<P: Protocol> World<P> {
    /// Creates a world and schedules boots, faults and oracle events.
    pub fn new(cfg: SimConfig, protocol: P) -> Self {
        let mut world = World {
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            network: Network::new(cfg.ts, cfg.timing.delta(), cfg.post_delay_range, cfg.pre.clone()),
            leader: LeaderOracle::new(cfg.leader_announce_after),
            queue: EventQueue::with_bucket_width_shift(Self::width_shift(&cfg), Self::queue_cap(&cfg)),
            cfg,
            protocol,
            procs: Vec::new(),
            alive: BitSet::default(),
            started: BitSet::default(),
            decided_at: Vec::new(),
            now: SimTime::ZERO,
            initial_values: Vec::new(),
            live_undecided: 0,
            msgs_sent: 0,
            msgs_sent_after_ts: 0,
            msgs_by_kind: Vec::with_capacity(8),
            msgs_dropped: 0,
            events: 0,
            commits: Vec::new(),
            scratch: Outbox::default(),
            trace: None,
            typed_trace: None,
            metrics: None,
        };
        world.populate();
        world
    }

    /// Bucket width ~δ/16 spreads in-flight messages across the calendar
    /// ring.
    fn width_shift(cfg: &SimConfig) -> u32 {
        (cfg.timing.delta().as_nanos() / 16).max(1024).ilog2()
    }

    /// Pre-size for the steady state: every process broadcasting to every
    /// process plus timers and control events, so the slab does not regrow
    /// during the first busy instants.
    fn queue_cap(cfg: &SimConfig) -> usize {
        let n = cfg.timing.n();
        24 * n * n + 8 * n + 64
    }

    /// Re-initializes this world for a fresh run of `cfg`, **reusing** the
    /// event queue's slab and ring, the per-process harness vector, the
    /// scratch outbox and every metrics buffer. A sweep resets one world
    /// per seed instead of rebuilding it; the run is bit-identical to one
    /// on a newly constructed `World::new(cfg, protocol)`
    /// (`reset_is_bit_identical_to_fresh_construction` enforces this).
    /// The protocol factory is kept; trace recording stays enabled if it
    /// was.
    pub fn reset(&mut self, cfg: SimConfig) {
        self.queue.reset(Self::width_shift(&cfg), Self::queue_cap(&cfg));
        self.rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        self.network = Network::new(cfg.ts, cfg.timing.delta(), cfg.post_delay_range, cfg.pre.clone());
        self.leader = LeaderOracle::new(cfg.leader_announce_after);
        self.cfg = cfg;
        self.now = SimTime::ZERO;
        self.live_undecided = 0;
        self.msgs_sent = 0;
        self.msgs_sent_after_ts = 0;
        self.msgs_by_kind.clear();
        self.msgs_dropped = 0;
        self.events = 0;
        self.commits.clear();
        if let Some(trace) = self.trace.as_mut() {
            trace.clear();
        }
        if let Some(tt) = self.typed_trace.as_mut() {
            tt.clear();
        }
        if let Some(state) = self.metrics.as_mut() {
            state.next_at = SimTime::ZERO + state.interval;
            state.snapshots.clear();
            state.firings.clear();
            state.watchdogs = Watchdogs::new(*state.watchdogs.config());
            // Outbox::reset keeps counters (registries are sampled, not
            // drained); a fresh run starts its series from zero.
            self.scratch.metrics_mut().reset();
        }
        self.populate();
    }

    /// Spawns the processes and schedules boots, faults, submissions and
    /// oracle events (shared by [`World::new`] and [`World::reset`]).
    fn populate(&mut self) {
        let cfg = &self.cfg;
        let n = cfg.timing.n();
        self.initial_values = cfg
            .initial_values
            .clone()
            .unwrap_or_else(|| (0..n as u64).map(|i| Value::new(100 + i)).collect());
        assert_eq!(
            self.initial_values.len(),
            n,
            "one initial value per process required"
        );
        // Reuse harness shells (and their timer-slot vectors) in place.
        self.procs.truncate(n);
        self.alive.reset(n);
        self.started.reset(n);
        self.decided_at.clear();
        self.decided_at.resize(n, None);
        for (i, h) in self.procs.iter_mut().enumerate() {
            let pid = ProcessId::new(i as u32);
            h.proc = self
                .protocol
                .spawn(pid, &cfg.timing, self.initial_values[i]);
            h.clock = DriftClock::sample(cfg.timing.rho(), &mut self.rng);
            h.timers.clear();
            h.decided_value = None;
            h.crash_times.clear();
            h.restart_times.clear();
        }
        for i in self.procs.len()..n {
            let pid = ProcessId::new(i as u32);
            self.procs.push(ProcHarness {
                proc: self
                    .protocol
                    .spawn(pid, &cfg.timing, self.initial_values[i]),
                clock: DriftClock::sample(cfg.timing.rho(), &mut self.rng),
                timers: Vec::with_capacity(8),
                decided_value: None,
                crash_times: Vec::new(),
                restart_times: Vec::new(),
            });
        }
        // Crashes are scheduled before boots at the same instant so that a
        // crash at t=0 prevents the process from ever starting.
        for &(pid, at) in &cfg.scenario.crashes {
            self.queue.push(at, EventKind::Crash { pid });
        }
        for pid in ProcessId::all(n) {
            self.queue.push(SimTime::ZERO, EventKind::Boot { pid });
        }
        for &(pid, at) in &cfg.scenario.restarts {
            self.queue.push(at, EventKind::Boot { pid });
        }
        for &(pid, at, value) in &cfg.scenario.submits {
            self.queue.push(at, EventKind::ClientSubmit { pid, value });
        }
        for stream in &cfg.scenario.streams {
            for (at, pid, value) in stream.expand(n) {
                self.queue.push(at, EventKind::ClientSubmit { pid, value });
            }
        }
        if cfg.leader_oracle {
            self.queue
                .push(self.leader.announce_time(cfg.ts), EventKind::LeaderAnnounce);
        }
    }

    /// Starts recording a human-readable line per processed event
    /// (delivers, timer fires, boots, crashes). Expensive; for debugging
    /// and small runs.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, if [`World::enable_trace`] was called.
    pub fn trace(&self) -> &[String] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Starts collecting typed protocol trace events
    /// ([`esync_core::trace::TraceEvent`]) into a bounded ring of `cap`
    /// records, each stamped with the simulated instant of the emitting
    /// event. Tracing never alters protocol behaviour — a traced run's
    /// actions, messages and metrics are bit-identical to an untraced
    /// one — and stays enabled across [`World::reset`] (the buffer is
    /// cleared), mirroring the string trace.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn enable_typed_trace(&mut self, cap: usize) {
        self.typed_trace = Some(esync_trace::TraceBuffer::new(cap));
        self.scratch.set_tracing(true);
    }

    /// The typed trace collector, if [`World::enable_typed_trace`] was
    /// called.
    pub fn typed_trace(&self) -> Option<&esync_trace::TraceBuffer> {
        self.typed_trace.as_ref()
    }

    /// Takes the collected typed trace records (oldest first), leaving
    /// collection enabled. Empty when tracing was never enabled.
    pub fn take_typed_trace(&mut self) -> Vec<esync_trace::TraceRecord> {
        self.typed_trace
            .as_mut()
            .map(|tt| tt.take_records())
            .unwrap_or_default()
    }

    /// Starts metering: protocols bump the cluster-wide counter registry
    /// through the outbox side channel, the world samples it into a
    /// [`MetricsSnapshot`] series every `interval` of simulated time
    /// (stamped at exact interval boundaries — each snapshot reflects
    /// precisely the events at instants `≤ at_ns`), and `cfg`'s online
    /// watchdogs are evaluated per snapshot window plus at every first
    /// decision (the live bound monitor). Metering never alters protocol
    /// behaviour — a metered run's actions, messages and report are
    /// bit-identical to an unmetered one (`tests/metrics_smoke.rs`) —
    /// and stays enabled across [`World::reset`] (series cleared,
    /// watchdog windows re-based), mirroring the traces.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn enable_metrics(&mut self, interval: RealDuration, cfg: WatchdogConfig) {
        assert!(interval > RealDuration::ZERO, "a snapshot cadence is required");
        self.metrics = Some(MetricsState {
            interval,
            next_at: SimTime::ZERO + interval,
            watchdogs: Watchdogs::new(cfg),
            snapshots: Vec::new(),
            firings: Vec::new(),
        });
        self.scratch.set_metering(true);
    }

    /// The snapshot series so far, if [`World::enable_metrics`] was
    /// called.
    pub fn metric_snapshots(&self) -> &[MetricsSnapshot] {
        self.metrics.as_ref().map_or(&[], |m| &m.snapshots)
    }

    /// Every watchdog firing so far, in observation order.
    pub fn watchdog_firings(&self) -> &[WatchdogFiring] {
        self.metrics.as_ref().map_or(&[], |m| &m.firings)
    }

    /// The metering cadence, if [`World::enable_metrics`] was called.
    pub fn metrics_interval(&self) -> Option<RealDuration> {
        self.metrics.as_ref().map(|m| m.interval)
    }

    /// Takes the collected snapshots and firings, leaving metering
    /// enabled. Empty when metering was never enabled.
    pub fn take_metrics(&mut self) -> (Vec<MetricsSnapshot>, Vec<WatchdogFiring>) {
        self.metrics
            .as_mut()
            .map(|m| (std::mem::take(&mut m.snapshots), std::mem::take(&mut m.firings)))
            .unwrap_or_default()
    }

    /// Samples the registry into a snapshot stamped `at`, evaluating the
    /// window watchdogs. `TraceDropped` is surfaced from the typed-trace
    /// collector first, and the shard-imbalance ratio is probed from the
    /// same per-shard `submitted` counters the rebalance trigger reads
    /// (sharded protocols only).
    fn take_metric_snapshot(&mut self, at: SimTime) {
        if self.metrics.is_none() {
            return;
        }
        let dropped = self
            .typed_trace
            .as_ref()
            .map_or(0, esync_trace::TraceBuffer::dropped);
        self.scratch.metrics_mut().set(Metric::TraceDropped, dropped);
        let shards = self.protocol.shard_count();
        let imbalance = if shards > 1 {
            let loads: Vec<u64> = (0..shards as u32)
                .map(|s| {
                    let shard = ShardId::new(s);
                    self.procs
                        .iter()
                        .map(|h| h.proc.shard_load(shard).submitted)
                        .sum()
                })
                .collect();
            esync_metrics::imbalance_x1000(&loads)
        } else {
            None
        };
        let snap = MetricsSnapshot {
            at_ns: at.as_nanos(),
            node: None,
            counters: *self.scratch.metrics().counters(),
        };
        let state = self.metrics.as_mut().expect("checked above");
        state.watchdogs.on_snapshot(&snap, imbalance, &mut state.firings);
        state.snapshots.push(snap);
        state.next_at = state.next_at + state.interval;
    }

    /// Flushes every snapshot boundary strictly before `up_to` (the next
    /// event's instant): by then all events at instants `≤` the boundary
    /// have been applied and none after, so the sample is exact.
    fn flush_metric_snapshots(&mut self, up_to: SimTime) {
        while self.metrics.as_ref().is_some_and(|m| m.next_at < up_to) {
            let at = self.metrics.as_ref().expect("checked").next_at;
            self.take_metric_snapshot(at);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The stabilization time of this run.
    pub fn ts(&self) -> SimTime {
        self.cfg.ts
    }

    /// The full configuration of this run (e.g. for embedding in
    /// benchmark artifacts).
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Read access to a process's state machine (for typed assertions in
    /// experiments and tests).
    pub fn process(&self, pid: ProcessId) -> &P::Process {
        &self.procs[pid.as_usize()].proc
    }

    /// Every commit (`Action::Decide`) so far, in application order: one
    /// record per command per process for multi-instance protocols. The
    /// feed the workload drivers compute latency histograms from.
    pub fn commits(&self) -> &[CommitRecord] {
        &self.commits
    }

    /// Injects a message to be delivered at `at`, bypassing the network
    /// model. This models the paper's *obsolete messages*: messages "sent
    /// before `TS` by failed processes" that the adversary releases at a
    /// time of its choosing. The caller is responsible for injecting only
    /// states the claimed sender could legitimately have reached.
    pub fn inject_message(&mut self, at: SimTime, from: ProcessId, to: ProcessId, msg: P::Msg) {
        self.queue.push(
            at,
            EventKind::Deliver {
                from,
                to,
                msg: MsgPayload::Owned(msg),
            },
        );
    }

    /// Schedules a client submission (multi-instance protocols).
    pub fn submit(&mut self, at: SimTime, pid: ProcessId, value: Value) {
        self.queue.push(at, EventKind::ClientSubmit { pid, value });
    }

    /// Schedules a crash at `at`, bypassing the scenario script — the
    /// fault-injection hook for drivers that pick their victim *during*
    /// the run (e.g. crash whichever process anchored as leader). The
    /// paper's model allows failures only before `TS`; unlike scripted
    /// crashes this is not validated, so callers targeting the modeled
    /// regime must keep `at ≤ TS` themselves.
    pub fn inject_crash(&mut self, at: SimTime, pid: ProcessId) {
        assert!(pid.as_usize() < self.cfg.timing.n(), "unknown process");
        self.queue.push(at, EventKind::Crash { pid });
    }

    /// Schedules a restart (or first boot, if the process never ran) at
    /// `at`, bypassing the scenario script. Pairs with
    /// [`World::inject_crash`] for mid-run leader-churn drives.
    pub fn inject_restart(&mut self, at: SimTime, pid: ProcessId) {
        assert!(pid.as_usize() < self.cfg.timing.n(), "unknown process");
        self.queue.push(at, EventKind::Boot { pid });
    }

    /// Processes events until every started, live process has decided and
    /// no boots or submissions remain pending.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] if the horizon passes first.
    pub fn run_to_completion(&mut self) -> Result<Report, SimError> {
        loop {
            if self.complete() {
                return Ok(self.report());
            }
            match self.queue.peek_time() {
                None => {
                    // Quiescent but incomplete: protocols always keep a
                    // timer armed, so this indicates a driver-level bug.
                    return Err(SimError::Timeout { at: self.now });
                }
                Some(t) if t > self.cfg.max_time => {
                    return Err(SimError::Timeout { at: t });
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Processes events with firing time ≤ `until`, then advances the clock
    /// to `until`. Useful for fixed-horizon measurements.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        // Close out the horizon: boundaries past the last event but
        // within it still sample (every event ≤ them has been applied).
        while self.metrics.as_ref().is_some_and(|m| m.next_at <= until) {
            let at = self.metrics.as_ref().expect("checked").next_at;
            self.take_metric_snapshot(at);
        }
        self.now = self.now.max(until);
    }

    /// Whether the completion condition holds. O(1): both halves are
    /// maintained incrementally (`live_undecided` by the boot/crash/decide
    /// handlers, pending control events by the queue). The debug cross-check
    /// scans only the SoA flag arrays — a few cache lines even at large `n`.
    pub fn complete(&self) -> bool {
        debug_assert_eq!(
            self.live_undecided,
            (0..self.procs.len())
                .filter(|&i| self.alive.get(i) && self.started.get(i) && self.decided_at[i].is_none())
                .count(),
            "live_undecided counter drifted"
        );
        self.live_undecided == 0 && self.queue.control_pending() == 0
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time must not run backwards");
        if self.metrics.is_some() {
            self.flush_metric_snapshots(ev.at);
        }
        self.now = ev.at;
        self.events += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(format!("{} {:?}", ev.at, ev.kind));
        }
        match ev.kind {
            EventKind::Boot { pid } => self.on_boot(pid),
            EventKind::Crash { pid } => self.on_crash(pid),
            EventKind::Deliver { from, to, msg } => self.on_deliver(from, to, msg),
            EventKind::TimerFire { pid, timer, epoch } => self.on_timer_fire(pid, timer, epoch),
            EventKind::WabDeliver { to, msg } => self.on_wab_deliver(to, msg),
            EventKind::LeaderAnnounce => self.on_leader_announce(),
            EventKind::LeaderChange { to, leader } => self.on_leader_change(to, leader),
            EventKind::ClientSubmit { pid, value } => self.on_client_submit(pid, value),
        }
        true
    }

    fn local_now(&self, pid: ProcessId) -> esync_core::time::LocalInstant {
        self.procs[pid.as_usize()].clock.local_at(self.now)
    }

    /// Takes the reusable outbox, re-armed for an event at `pid`'s local
    /// clock. Pair with [`World::put_outbox`].
    fn take_outbox(&mut self, pid: ProcessId) -> Outbox<P::Msg> {
        let mut out = std::mem::take(&mut self.scratch);
        out.reset(self.local_now(pid));
        out
    }

    fn put_outbox(&mut self, out: Outbox<P::Msg>) {
        self.scratch = out;
    }

    fn on_boot(&mut self, pid: ProcessId) {
        let i = pid.as_usize();
        if self.alive.get(i) {
            return; // duplicate boot (e.g. restart of a never-crashed pid)
        }
        if self.procs[i].crash_times.last() == Some(&self.now) {
            // A crash at the same instant wins (crashes are scheduled
            // before boots): "dead forever" processes never run.
            return;
        }
        self.alive.set(i, true);
        if self.decided_at[i].is_none() {
            self.live_undecided += 1;
        }
        let mut out = self.take_outbox(pid);
        if !self.started.get(i) {
            self.started.set(i, true);
            self.procs[i].proc.on_start(&mut out);
        } else {
            self.procs[i].restart_times.push(self.now);
            self.procs[i].proc.on_restart(&mut out);
        }
        self.apply_actions(pid, &mut out);
        self.put_outbox(out);
        // A process restarting after the oracle spoke learns the leader.
        if self.cfg.leader_oracle {
            if let Some(leader) = self.leader.current() {
                self.queue
                    .push(self.now, EventKind::LeaderChange { to: pid, leader });
            }
        }
    }

    fn on_crash(&mut self, pid: ProcessId) {
        let i = pid.as_usize();
        self.procs[i].crash_times.push(self.now);
        if !self.alive.get(i) && !self.started.get(i) {
            // Crash-before-start: mark started-never; nothing else to do.
            return;
        }
        if self.alive.get(i) && self.decided_at[i].is_none() {
            self.live_undecided -= 1;
        }
        self.alive.set(i, false);
        // All pending timers die with the incarnation.
        for slot in &mut self.procs[i].timers {
            slot.epoch += 1;
            slot.armed_at = None;
        }
    }

    fn on_deliver(&mut self, from: ProcessId, to: ProcessId, msg: MsgPayload<P::Msg>) {
        if !self.runnable(to) {
            self.msgs_dropped += 1;
            return;
        }
        let mut out = self.take_outbox(to);
        self.procs[to.as_usize()]
            .proc
            .on_message(from, msg.get(), &mut out);
        drop(msg);
        self.apply_actions(to, &mut out);
        self.put_outbox(out);
    }

    /// Whether `pid` is alive and started — the per-event liveness check,
    /// reading only the SoA bitsets.
    #[inline]
    fn runnable(&self, pid: ProcessId) -> bool {
        let i = pid.as_usize();
        self.alive.get(i) && self.started.get(i)
    }

    fn on_timer_fire(&mut self, pid: ProcessId, timer: TimerId, epoch: u64) {
        let now = self.now;
        let h = &mut self.procs[pid.as_usize()];
        let slot = h.timer_slot(timer);
        slot.next_pending = None;
        if slot.epoch != epoch {
            // Superseded or cancelled. If the timer was re-armed to a later
            // deadline, this (earlier) pop is where the deferred heap event
            // gets scheduled — see `TimerSlot`.
            if let Some(armed) = slot.armed_at {
                debug_assert!(armed >= now, "armed deadlines are never in the past");
                let current_epoch = slot.epoch;
                slot.next_pending = Some(armed);
                self.queue.push(
                    armed,
                    EventKind::TimerFire {
                        pid,
                        timer,
                        epoch: current_epoch,
                    },
                );
            }
            return;
        }
        // Current epoch: this is the armed deadline firing. Consume the
        // arm by bumping the epoch — duplicate heap events for the same
        // epoch can exist (a stale pop re-pushing for a deadline that a
        // `SetTimer` also pushed for), and exactly one of them may fire.
        slot.epoch += 1;
        slot.armed_at = None;
        if !self.runnable(pid) {
            return;
        }
        let mut out = self.take_outbox(pid);
        self.procs[pid.as_usize()].proc.on_timer(timer, &mut out);
        self.apply_actions(pid, &mut out);
        self.put_outbox(out);
    }

    fn on_wab_deliver(&mut self, to: ProcessId, msg: esync_core::wab::WabMessage) {
        if !self.runnable(to) {
            return;
        }
        let mut out = self.take_outbox(to);
        self.procs[to.as_usize()].proc.on_wab_deliver(msg, &mut out);
        self.apply_actions(to, &mut out);
        self.put_outbox(out);
    }

    fn on_leader_announce(&mut self) {
        let alive = (0..self.procs.len())
            .filter(|&i| self.alive.get(i) && self.started.get(i))
            .map(|i| ProcessId::new(i as u32));
        if let Some(leader) = self.leader.announce(alive) {
            for pid in ProcessId::all(self.cfg.timing.n()) {
                if self.alive.get(pid.as_usize()) {
                    self.queue
                        .push(self.now, EventKind::LeaderChange { to: pid, leader });
                }
            }
        }
    }

    fn on_leader_change(&mut self, to: ProcessId, leader: ProcessId) {
        if !self.runnable(to) {
            return;
        }
        let mut out = self.take_outbox(to);
        self.procs[to.as_usize()]
            .proc
            .on_leader_change(leader, &mut out);
        self.apply_actions(to, &mut out);
        self.put_outbox(out);
    }

    fn on_client_submit(&mut self, pid: ProcessId, value: Value) {
        if !self.runnable(pid) {
            return;
        }
        let mut out = self.take_outbox(pid);
        self.procs[pid.as_usize()].proc.on_client(value, &mut out);
        self.apply_actions(pid, &mut out);
        self.put_outbox(out);
    }

    /// Counts one message of `kind`. Linear scan: protocols declare only a
    /// handful of kinds, so this beats a map lookup per message.
    fn count_kind(&mut self, kind: &'static str, by: u64) {
        for (k, v) in &mut self.msgs_by_kind {
            if *k == kind {
                *v += by;
                return;
            }
        }
        self.msgs_by_kind.push((kind, by));
    }

    fn account_send(&mut self, kind: &'static str) {
        self.msgs_sent += 1;
        if self.now >= self.cfg.ts {
            self.msgs_sent_after_ts += 1;
        }
        self.count_kind(kind, 1);
    }

    fn send_one(&mut self, from: ProcessId, to: ProcessId, msg: P::Msg) {
        self.account_send(P::kind_of(&msg));
        match self.network.classify(self.now, from, to, &mut self.rng) {
            Delivery::Drop => self.msgs_dropped += 1,
            Delivery::At(t) => {
                self.queue.push(
                    t,
                    EventKind::Deliver {
                        from,
                        to,
                        msg: MsgPayload::Owned(msg),
                    },
                );
            }
        }
    }

    /// Fans one broadcast payload out to every process.
    ///
    /// Messages that own heap data (detected at compile time via
    /// [`std::mem::needs_drop`], e.g. a phase-1b carrying a `Vec` of votes)
    /// are allocated **once** behind an `Arc` and shared by every
    /// recipient's delivery event — zero deep clones. Flat `Copy`-style
    /// messages are cheaper to memcpy inline than to route through a shared
    /// allocation, so they stay owned. The branch is a monomorphization-time
    /// constant.
    fn broadcast(&mut self, from: ProcessId, msg: P::Msg) {
        let n = self.cfg.timing.n();
        // One accounting update for the whole fan-out instead of n.
        self.msgs_sent += n as u64;
        if self.now >= self.cfg.ts {
            self.msgs_sent_after_ts += n as u64;
        }
        self.count_kind(P::kind_of(&msg), n as u64);
        if std::mem::needs_drop::<P::Msg>() {
            let shared = Arc::new(msg);
            for to in ProcessId::all(n) {
                match self.network.classify(self.now, from, to, &mut self.rng) {
                    Delivery::Drop => self.msgs_dropped += 1,
                    Delivery::At(t) => {
                        self.queue.push(
                            t,
                            EventKind::Deliver {
                                from,
                                to,
                                msg: MsgPayload::Shared(Arc::clone(&shared)),
                            },
                        );
                    }
                }
            }
        } else {
            for to in ProcessId::all(n) {
                match self.network.classify(self.now, from, to, &mut self.rng) {
                    Delivery::Drop => self.msgs_dropped += 1,
                    Delivery::At(t) => {
                        self.queue.push(
                            t,
                            EventKind::Deliver {
                                from,
                                to,
                                msg: MsgPayload::Owned(msg.clone()),
                            },
                        );
                    }
                }
            }
        }
    }

    fn apply_actions(&mut self, pid: ProcessId, out: &mut Outbox<P::Msg>) {
        // Drain the trace side channel first, stamping each event with
        // the simulated instant of the event being applied — same-seed
        // runs therefore produce byte-identical trace files.
        if let Some(tt) = self.typed_trace.as_mut() {
            let at_ns = self.now.as_nanos();
            for ev in out.drain_trace() {
                tt.push(esync_trace::TraceRecord { at_ns, pid, ev });
            }
        }
        let n = self.cfg.timing.n();
        for action in out.drain_iter() {
            match action {
                Action::Send { to, msg } => self.send_one(pid, to, msg),
                Action::Broadcast { msg } => self.broadcast(pid, msg),
                Action::SetTimer { id, after } => {
                    let h = &mut self.procs[pid.as_usize()];
                    let fire_at = h.clock.real_after(self.now, after);
                    let slot = h.timer_slot(id);
                    slot.epoch += 1;
                    slot.armed_at = Some(fire_at);
                    // Lazy re-arm: if a pending heap event already fires at
                    // or before the new deadline, reuse it (its stale pop
                    // re-pushes for the armed deadline) instead of flooding
                    // the queue with one event per re-arm.
                    if slot.next_pending.is_none_or(|p| p > fire_at) {
                        slot.next_pending = Some(fire_at);
                        let epoch = slot.epoch;
                        self.queue.push(
                            fire_at,
                            EventKind::TimerFire {
                                pid,
                                timer: id,
                                epoch,
                            },
                        );
                    }
                }
                Action::CancelTimer { id } => {
                    let slot = self.procs[pid.as_usize()].timer_slot(id);
                    slot.epoch += 1;
                    slot.armed_at = None;
                }
                Action::Decide { value, shard } => {
                    self.commits.push(CommitRecord {
                        at: self.now,
                        pid,
                        shard,
                        value,
                    });
                    let i = pid.as_usize();
                    if self.decided_at[i].is_none() {
                        self.decided_at[i] = Some(self.now);
                        self.procs[i].decided_value = Some(value);
                        if self.alive.get(i) && self.started.get(i) {
                            self.live_undecided -= 1;
                        }
                        // Live bound monitor: each process's *first*
                        // decision is the one the paper's deadline
                        // `TS + ε + 3τ + 5δ` speaks about.
                        if let Some(state) = self.metrics.as_mut() {
                            if let Some(f) =
                                state.watchdogs.on_decision(self.now.as_nanos(), None)
                            {
                                state.firings.push(f);
                            }
                        }
                    }
                }
                Action::WabBroadcast { msg } => {
                    let plan =
                        plan_wab_delivery(self.now, n, &self.network, &self.cfg.pre, &mut self.rng);
                    for (to, when) in plan {
                        match when {
                            Some(t) => {
                                self.queue.push(t, EventKind::WabDeliver { to, msg });
                            }
                            None => self.msgs_dropped += 1,
                        }
                    }
                    self.msgs_sent += n as u64;
                    if self.now >= self.cfg.ts {
                        self.msgs_sent_after_ts += n as u64;
                    }
                    self.count_kind("wab", n as u64);
                }
            }
        }
    }

    /// Snapshot of everything measured so far.
    pub fn report(&self) -> Report {
        Report {
            protocol: self.protocol.name().to_string(),
            n: self.cfg.timing.n(),
            seed: self.cfg.seed,
            ts: self.cfg.ts,
            delta: self.cfg.timing.delta(),
            end_time: self.now,
            decided_at: self.decided_at.clone(),
            decisions: self.procs.iter().map(|h| h.decided_value).collect(),
            alive_at_end: (0..self.procs.len()).map(|i| self.alive.get(i)).collect(),
            started: (0..self.procs.len()).map(|i| self.started.get(i)).collect(),
            crashes: self.procs.iter().map(|h| h.crash_times.clone()).collect(),
            restarts: self.procs.iter().map(|h| h.restart_times.clone()).collect(),
            initial_values: self.initial_values.clone(),
            msgs_sent: self.msgs_sent,
            msgs_sent_after_ts: self.msgs_sent_after_ts,
            msgs_by_kind: self
                .msgs_by_kind
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            msgs_dropped: self.msgs_dropped,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esync_core::paxos::session::SessionPaxos;

    fn quick_cfg(n: usize, seed: u64) -> SimConfig {
        SimConfig::builder(n)
            .seed(seed)
            .stability_at_millis(200)
            .build()
            .unwrap()
    }

    #[test]
    fn session_paxos_completes_and_agrees() {
        let mut w = World::new(quick_cfg(5, 1), SessionPaxos::new());
        let r = w.run_to_completion().expect("completes");
        assert!(r.agreement());
        assert!(r.validity());
        assert!(r.all_alive_decided());
    }

    #[test]
    fn runs_are_deterministic() {
        let r1 = World::new(quick_cfg(5, 42), SessionPaxos::new())
            .run_to_completion()
            .unwrap();
        let r2 = World::new(quick_cfg(5, 42), SessionPaxos::new())
            .run_to_completion()
            .unwrap();
        assert_eq!(r1.decided_at, r2.decided_at);
        assert_eq!(r1.msgs_sent, r2.msgs_sent);
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = World::new(quick_cfg(5, 1), SessionPaxos::new())
            .run_to_completion()
            .unwrap();
        let r2 = World::new(quick_cfg(5, 2), SessionPaxos::new())
            .run_to_completion()
            .unwrap();
        // Overwhelmingly likely with chaotic pre-TS phases.
        assert_ne!(
            (r1.decided_at.clone(), r1.msgs_sent),
            (r2.decided_at.clone(), r2.msgs_sent)
        );
    }

    #[test]
    fn decisions_respect_paper_bound() {
        for seed in 0..10 {
            let cfg = quick_cfg(5, seed);
            let bound = cfg.timing.decision_bound() + cfg.timing.epsilon();
            let mut w = World::new(cfg, SessionPaxos::new());
            let r = w.run_to_completion().unwrap();
            let worst = r.max_decision_after_ts().expect("someone decided");
            assert!(
                worst <= bound,
                "seed {seed}: {:.2}δ exceeds the bound {:.2}δ",
                r.max_decision_after_ts_in_delta().unwrap(),
                bound.as_nanos() as f64 / r.delta.as_nanos() as f64
            );
        }
    }

    #[test]
    fn crash_before_start_keeps_process_down() {
        let cfg = SimConfig::builder(5)
            .seed(3)
            .stability_at_millis(200)
            .scenario(Scenario::none().dead_forever(ProcessId::new(4)))
            .build()
            .unwrap();
        let mut w = World::new(cfg, SessionPaxos::new());
        let r = w.run_to_completion().unwrap();
        assert!(!r.started[4], "p4 never ran");
        assert!(r.decisions[4].is_none());
        assert!(r.agreement());
        assert!((0..4).all(|i| r.decisions[i].is_some()));
    }

    #[test]
    fn crash_and_restart_cycle() {
        let cfg = SimConfig::builder(3)
            .seed(4)
            .stability_at_millis(200)
            .scenario(Scenario::none().down_between(
                ProcessId::new(2),
                SimTime::from_millis(50),
                SimTime::from_millis(400),
            ))
            .build()
            .unwrap();
        let mut w = World::new(cfg, SessionPaxos::new());
        let r = w.run_to_completion().unwrap();
        assert_eq!(r.restarts[2].len(), 1);
        assert!(r.decisions[2].is_some(), "restarted process decides");
        assert!(r.agreement());
    }

    #[test]
    fn scenario_validation_rejects_post_ts_crash() {
        let err = SimConfig::builder(3)
            .stability_at_millis(100)
            .scenario(Scenario::none().crash(ProcessId::new(0), SimTime::from_millis(150)))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::CrashAfterStability { .. }));
    }

    #[test]
    fn scenario_validation_rejects_unknown_pid() {
        let err = SimConfig::builder(3)
            .scenario(Scenario::none().crash(ProcessId::new(7), SimTime::ZERO))
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::NoSuchProcess { .. }));
    }

    #[test]
    fn max_time_trips_timeout() {
        // Isolate a majority before TS and set max_time below TS: cannot
        // finish.
        let cfg = SimConfig::builder(3)
            .seed(5)
            .stability_at_millis(500)
            .pre_stability(PreStability::silent())
            .max_time(SimTime::from_millis(100))
            .build()
            .unwrap();
        let mut w = World::new(cfg, SessionPaxos::new());
        assert!(matches!(
            w.run_to_completion(),
            Err(SimError::Timeout { .. })
        ));
    }

    #[test]
    fn run_until_advances_clock() {
        let mut w = World::new(quick_cfg(3, 6), SessionPaxos::new());
        w.run_until(SimTime::from_millis(50));
        assert_eq!(w.now(), SimTime::from_millis(50));
    }

    #[test]
    fn report_counts_messages() {
        let mut w = World::new(quick_cfg(3, 7), SessionPaxos::new());
        let r = w.run_to_completion().unwrap();
        assert!(r.msgs_sent > 0);
        assert!(r.msgs_by_kind.contains_key("1a"));
        assert!(r.msgs_by_kind.contains_key("2b"));
        let sum: u64 = r.msgs_by_kind.values().sum();
        assert_eq!(sum, r.msgs_sent);
    }

    #[test]
    fn leader_oracle_skips_dead_lowest_process() {
        use esync_core::paxos::traditional::TraditionalPaxos;
        let cfg = SimConfig::builder(3)
            .seed(9)
            .stability_at_millis(100)
            .pre_stability(PreStability::lossless())
            .scenario(Scenario::none().dead_forever(ProcessId::new(0)))
            .leader_oracle(true)
            .build()
            .unwrap();
        let mut w = World::new(cfg, TraditionalPaxos::new());
        let r = w.run_to_completion().unwrap();
        assert!(r.agreement());
        assert!(r.decisions[1].is_some() && r.decisions[2].is_some());
        assert!(r.decisions[0].is_none(), "p0 never ran");
    }

    #[test]
    fn wab_oracle_drives_original_bconsensus() {
        use esync_core::bconsensus::BConsensus;
        let cfg = SimConfig::builder(3)
            .seed(10)
            .stability_at_millis(150)
            .build()
            .unwrap();
        let mut w = World::new(cfg, BConsensus::original());
        let r = w.run_to_completion().unwrap();
        assert!(r.agreement() && r.validity());
        assert!(
            r.msgs_by_kind.contains_key("wab"),
            "w-broadcasts are counted: {:?}",
            r.msgs_by_kind
        );
    }

    #[test]
    fn submit_to_down_process_is_ignored() {
        use esync_core::paxos::multi::MultiPaxos;
        let cfg = SimConfig::builder(3)
            .seed(11)
            .stability_at_millis(0)
            .pre_stability(PreStability::lossless())
            .scenario(
                Scenario::none()
                    .dead_forever(ProcessId::new(2))
                    // Submitted to the dead process: silently lost (the
                    // client's problem, as in any real system).
                    .submit(ProcessId::new(2), SimTime::from_millis(500), Value::new(9))
                    // Submitted to a live one: committed.
                    .submit(ProcessId::new(0), SimTime::from_millis(500), Value::new(8)),
            )
            .build()
            .unwrap();
        let mut w = World::new(cfg, MultiPaxos::new());
        w.run_until(SimTime::from_secs(2));
        let committed: Vec<u64> = w
            .process(ProcessId::new(0))
            .log_values()
            .map(|v| v.get())
            .collect();
        assert!(committed.contains(&8));
        assert!(!committed.contains(&9));
        // The commit feed saw value 8 at every live process.
        assert!(w.commits().iter().any(|c| c.value.get() == 8));
        assert!(!w.commits().iter().any(|c| c.value.get() == 9));
    }

    #[test]
    fn submit_streams_drive_the_log() {
        use crate::scenario::{SubmitStream, kv_id};
        use esync_core::paxos::multi::MultiPaxos;
        use esync_core::time::RealDuration;
        let stream = SubmitStream::fixed_rate(
            SimTime::from_millis(500),
            RealDuration::from_millis(10),
            6,
        )
        .keyed(8)
        .seed(3);
        let cfg = SimConfig::builder(3)
            .seed(12)
            .stability_at_millis(0)
            .pre_stability(PreStability::lossless())
            .scenario(Scenario::none().stream(stream))
            .build()
            .unwrap();
        let mut w = World::new(cfg, MultiPaxos::new());
        w.run_until(SimTime::from_secs(2));
        for pid in ProcessId::all(3) {
            let ids: std::collections::BTreeSet<u64> =
                w.process(pid).log_values().map(kv_id).collect();
            assert_eq!(ids, (0..6).collect(), "{pid}: stream commands missing");
        }
    }

    /// The allocation-reusing `World::reset` must be indistinguishable
    /// from fresh construction — same events, same report, bit for bit —
    /// including across a change of `n` and scenario shape.
    #[test]
    fn reset_is_bit_identical_to_fresh_construction() {
        let mut reused = World::new(quick_cfg(5, 1), SessionPaxos::new());
        reused.run_to_completion().unwrap();
        for (n, seed) in [(5, 2u64), (3, 7), (5, 42), (9, 3)] {
            let fresh_report = World::new(quick_cfg(n, seed), SessionPaxos::new())
                .run_to_completion()
                .unwrap();
            reused.reset(quick_cfg(n, seed));
            let reused_report = reused.run_to_completion().unwrap();
            assert_eq!(fresh_report, reused_report, "n={n} seed={seed}");
        }
        // Scenario events reschedule on reset too.
        let cfg = || {
            SimConfig::builder(3)
                .seed(4)
                .stability_at_millis(200)
                .scenario(Scenario::none().down_between(
                    ProcessId::new(2),
                    SimTime::from_millis(50),
                    SimTime::from_millis(400),
                ))
                .build()
                .unwrap()
        };
        let fresh = World::new(cfg(), SessionPaxos::new())
            .run_to_completion()
            .unwrap();
        reused.reset(cfg());
        assert_eq!(fresh, reused.run_to_completion().unwrap());
    }

    #[test]
    fn metered_run_is_bit_identical_and_samples_on_cadence() {
        let run = |metered: bool| {
            let mut w = World::new(quick_cfg(5, 21), SessionPaxos::new());
            if metered {
                w.enable_metrics(
                    RealDuration::from_millis(50),
                    esync_metrics::WatchdogConfig::default(),
                );
            }
            let r = w.run_to_completion().unwrap();
            (
                r,
                w.metric_snapshots().to_vec(),
                w.watchdog_firings().to_vec(),
            )
        };
        let (plain, no_snaps, _) = run(false);
        let (metered, snaps, firings) = run(true);
        assert_eq!(plain, metered, "metering must not perturb the run");
        assert!(no_snaps.is_empty());
        // TS is 200ms and the run decides after it, so at least four
        // 50ms boundaries pass; the series is stamped on-cadence and
        // its counters are monotone.
        assert!(snaps.len() >= 4, "{} snapshots", snaps.len());
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.at_ns, (i as u64 + 1) * 50_000_000);
            assert_eq!(s.node, None);
        }
        for w in snaps.windows(2) {
            assert!(w[0].counters.iter().zip(w[1].counters.iter()).all(|(a, b)| a <= b));
        }
        let last = snaps.last().unwrap();
        assert!(last.counter(esync_core::metrics::Metric::OneASent) > 0);
        // A quiet, healthy single-shot run trips no watchdog.
        assert_eq!(firings, &[]);
        // Metering survives reset and the series restarts from scratch.
        let mut w = World::new(quick_cfg(5, 21), SessionPaxos::new());
        w.enable_metrics(
            RealDuration::from_millis(50),
            esync_metrics::WatchdogConfig::default(),
        );
        w.run_to_completion().unwrap();
        w.reset(quick_cfg(5, 21));
        w.run_to_completion().unwrap();
        assert_eq!(w.metric_snapshots(), &snaps[..], "reset rebases the series");
    }

    #[test]
    fn bound_watchdog_fires_on_injected_tight_deadline() {
        let cfg = quick_cfg(5, 1);
        let mut w = World::new(cfg, SessionPaxos::new());
        w.enable_metrics(
            RealDuration::from_millis(50),
            esync_metrics::WatchdogConfig {
                // An absurdly tight injected deadline: 1ns after TS=0.
                bound: Some(esync_metrics::BoundSpec { ts_ns: 0, bound_ns: 1 }),
                ..Default::default()
            },
        );
        w.run_to_completion().unwrap();
        let fired = w
            .watchdog_firings()
            .iter()
            .filter(|f| f.kind == esync_metrics::WatchdogKind::Bound)
            .count();
        assert_eq!(fired, 5, "every first decision is past the injected deadline");
    }

    #[test]
    fn silent_pre_ts_still_decides_after_ts() {
        let cfg = SimConfig::builder(5)
            .seed(8)
            .stability_at_millis(400)
            .pre_stability(PreStability::silent())
            .build()
            .unwrap();
        let bound = cfg.timing.decision_bound() + cfg.timing.epsilon();
        let mut w = World::new(cfg, SessionPaxos::new());
        let r = w.run_to_completion().unwrap();
        assert!(r.agreement());
        let worst = r.max_decision_after_ts().unwrap();
        assert!(worst <= bound, "worst {worst} > bound {bound}");
    }

    /// Regression: the lazy-rearm machinery must fire each timer arm at
    /// most once. The trap: arm at +10ms, re-arm *earlier* at +5ms (two
    /// heap events now pending), then re-arm at +20ms from inside the
    /// first fire — the stale +10ms pop re-pushes for the +20ms deadline
    /// that the re-arm also pushed for, creating duplicate same-epoch
    /// events. Exactly one of them may fire.
    #[test]
    fn rearmed_timer_fires_once_per_arm() {
        use esync_core::outbox::{Outbox, Process, Protocol};
        use esync_core::time::LocalDuration;

        #[derive(Debug)]
        struct TimerScript {
            id: ProcessId,
            fires: u32,
            decided: Option<Value>,
        }
        impl Process for TimerScript {
            type Msg = ();
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_start(&mut self, out: &mut Outbox<()>) {
                let t = esync_core::types::TimerId::new(0);
                out.set_timer(t, LocalDuration::from_millis(10));
                out.set_timer(t, LocalDuration::from_millis(5)); // earlier re-arm
            }
            fn on_message(&mut self, _f: ProcessId, _m: &(), _o: &mut Outbox<()>) {}
            fn on_timer(&mut self, timer: esync_core::types::TimerId, out: &mut Outbox<()>) {
                self.fires += 1;
                if self.fires == 1 {
                    out.set_timer(timer, LocalDuration::from_millis(20));
                }
                // No re-arm after the second fire: any further fire is a
                // duplicate of an already-consumed arm.
            }
            fn on_restart(&mut self, _o: &mut Outbox<()>) {}
            fn decision(&self) -> Option<Value> {
                self.decided
            }
        }
        #[derive(Debug)]
        struct TimerScriptProto;
        impl Protocol for TimerScriptProto {
            type Msg = ();
            type Process = TimerScript;
            fn name(&self) -> &'static str {
                "timer-script"
            }
            fn spawn(&self, id: ProcessId, _cfg: &TimingConfig, _v: Value) -> TimerScript {
                TimerScript {
                    id,
                    fires: 0,
                    decided: None,
                }
            }
        }

        let cfg = SimConfig::builder(1)
            .seed(0)
            .stability_at_millis(0)
            .pre_stability(PreStability::lossless())
            .build()
            .unwrap();
        let mut w = World::new(cfg, TimerScriptProto);
        // Drive past every pending (including duplicate) timer event.
        w.run_until(SimTime::from_millis(200));
        assert_eq!(w.process(ProcessId::new(0)).fires, 2, "one fire per arm");
    }
}
