//! Workload drivers over the deterministic discrete-event simulator.
//!
//! Everything here is a pure function of the configuration and seeds:
//! rerunning a driver with the same inputs produces a bit-identical
//! [`WorkloadSummary`] (and simulator [`Report`]), which is what lets
//! `BENCH_exp_w*.json` artifacts diff cleanly across machines.

use crate::collect::Collector;
use crate::gen::{ClosedLoopSpec, CommandGen};
use esync_core::outbox::{Process, Protocol, ShardLoad};
use esync_core::paxos::group::ShardedLogView;
use esync_core::types::{ProcessId, ShardId};
use esync_sim::metrics::WorkloadSummary;
use esync_sim::scenario::kv_id;
use esync_sim::{Report, SimConfig, SimTime, World};
use std::collections::BTreeMap;

/// A completed simulator workload run.
#[derive(Debug, Clone)]
pub struct SimWorkloadOutcome {
    /// Throughput and latency measurements.
    pub summary: WorkloadSummary,
    /// The underlying simulator report (events, messages, config echo).
    pub report: Report,
    /// Simulated instant the drive stopped at.
    pub end: SimTime,
    /// Whether every pair of processes agrees on every shared log slot of
    /// every shard — the replicated-log safety property (single-shot
    /// `Report::agreement` is about first decides and does not apply to
    /// steady-state logs).
    pub log_agreement: bool,
    /// Per-process router epochs at the end of the run (all zero unless
    /// live rebalancing moved a boundary; rebalance tests assert they
    /// agree and are nonzero).
    pub router_epochs: Vec<u64>,
    /// The typed trace collected during the drive, stamped in simulated
    /// nanoseconds. Empty unless the run was traced (the `_traced`
    /// entry points, or a caller-prepared world with
    /// [`World::enable_typed_trace`]).
    pub trace: Vec<esync_trace::TraceRecord>,
}

/// Slot-by-slot log agreement across all processes, per shard: no two
/// processes hold different batches in the same `(shard, slot)`. Works
/// over any log protocol exposing [`ShardedLogView`] — the plain
/// `MultiPaxos` log (one shard) and the sharded `LogGroup` alike.
fn logs_agree<P>(world: &World<P>) -> bool
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let n = world.config().timing.n();
    let shards = (0..n as u32)
        .map(|p| world.process(ProcessId::new(p)).shard_count())
        .max()
        .unwrap_or(1);
    for shard in (0..shards as u32).map(ShardId::new) {
        let mut reference: BTreeMap<u64, &[esync_core::types::Value]> = BTreeMap::new();
        for pid in (0..n as u32).map(ProcessId::new) {
            let proc = world.process(pid);
            debug_assert_eq!(proc.shard_count(), shards, "homogeneous groups");
            for (slot, batch) in proc.shard_log(shard).iter() {
                match reference.entry(slot) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(batch);
                    }
                    std::collections::btree_map::Entry::Occupied(e) => {
                        if *e.get() != &batch[..] {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Runs an **open-loop** workload: the configuration's scenario
/// [`SubmitStream`](esync_sim::scenario::SubmitStream)s arrive on their
/// schedule regardless of completion; the world runs to `horizon` and
/// every commit is scored against its submission. Only stream commands
/// are scored — plain `scenario.submits` still execute, but their values
/// share no id-namespace discipline with the streams, so they are left
/// out of the measurement (the collector ignores untracked ids).
///
/// The pre-/post-stability split classifies a command by its *submission*
/// instant relative to the configuration's `TS`.
///
/// Generic over the log protocol: drive a plain
/// [`MultiPaxos`](esync_core::paxos::multi::MultiPaxos) or a sharded
/// [`LogGroup`](esync_core::paxos::group::LogGroup) — shard routing
/// happens inside the processes, so the submitted command sequence is
/// bit-identical across shard counts.
pub fn run_open_loop<P>(cfg: SimConfig, protocol: P, horizon: SimTime) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    run_open_loop_inner(cfg, protocol, horizon, None)
}

/// [`run_open_loop`] with typed tracing enabled: every process's
/// [`TraceEvent`](esync_core::trace::TraceEvent)s are collected (into a
/// ring of `trace_capacity` records) and the summary's
/// `phase_latency` decomposition is attached. Tracing is observational
/// only, so apart from the extra fields the outcome is bit-identical to
/// the untraced run.
pub fn run_open_loop_traced<P>(
    cfg: SimConfig,
    protocol: P,
    horizon: SimTime,
    trace_capacity: usize,
) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    run_open_loop_inner(cfg, protocol, horizon, Some(trace_capacity))
}

fn run_open_loop_inner<P>(
    cfg: SimConfig,
    protocol: P,
    horizon: SimTime,
    trace_capacity: Option<usize>,
) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let n = cfg.timing.n();
    let spec_window = default_timeline_window(&cfg);
    let mut collector = Collector::new(Some(cfg.ts.as_nanos()), spec_window);
    collector.reserve_shards(protocol.shard_count());
    // `expand` is a pure function of `(stream, n)`, so this expansion is
    // bit-identical to the one `World::new` schedules from the same
    // config — the collector scores against exactly the submissions the
    // world executes.
    for stream in &cfg.scenario.streams {
        for (at, _, value) in stream.expand(n) {
            collector.on_submit(value, at.as_nanos());
        }
    }
    let mut world = World::new(cfg, protocol);
    if let Some(cap) = trace_capacity {
        world.enable_typed_trace(cap);
    }
    world.run_until(horizon);
    for c in world.commits() {
        collector.on_commit(c.pid, c.shard, c.value, c.at.as_nanos());
    }
    collector.set_shard_loads(&shard_loads(&world));
    finish(collector, &mut world)
}

/// Assembles the outcome, attaching the typed trace (and the summary's
/// phase decomposition) when the world collected one.
fn finish<P>(collector: Collector, world: &mut World<P>) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let traced = world.typed_trace().is_some();
    let trace_dropped = world.typed_trace().map_or(0, esync_trace::TraceBuffer::dropped);
    let metered = world.metrics_interval();
    let trace = world.take_typed_trace();
    let mut summary = collector.summary();
    if traced {
        summary.phase_latency = Some(esync_trace::decompose(&trace));
    }
    if let Some(interval) = metered {
        let (snapshots, firings) = world.take_metrics();
        summary.health = Some(esync_metrics::HealthSummary {
            interval_ns: interval.as_nanos(),
            snapshots,
            firings,
            trace_dropped,
        });
    }
    SimWorkloadOutcome {
        summary,
        report: world.report(),
        end: world.now(),
        log_agreement: logs_agree(world),
        router_epochs: router_epochs(world),
        trace,
    }
}

/// The open-loop timeline window: δ·5, so a 10ms-δ run gets 50ms windows.
fn default_timeline_window(cfg: &SimConfig) -> esync_core::time::RealDuration {
    cfg.timing.delta() * 5
}

/// Sums the protocol-level per-shard load counters across processes
/// (the schema-v5 `submitted`/`admitted` observability).
fn shard_loads<P>(world: &World<P>) -> Vec<ShardLoad>
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let n = world.config().timing.n();
    let shards = world.process(ProcessId::new(0)).shard_count();
    (0..shards as u32)
        .map(ShardId::new)
        .map(|shard| {
            let mut total = ShardLoad::default();
            for pid in (0..n as u32).map(ProcessId::new) {
                let load = world.process(pid).shard_load(shard);
                total.submitted += load.submitted;
                total.admitted += load.admitted;
            }
            total
        })
        .collect()
}

/// Every process's applied router epoch, by pid.
fn router_epochs<P: Protocol>(world: &World<P>) -> Vec<u64> {
    let n = world.config().timing.n();
    (0..n as u32)
        .map(|p| world.process(ProcessId::new(p)).router_epoch())
        .collect()
}

/// Runs a **closed-loop** workload: `spec.clients` clients each keep
/// `spec.outstanding` commands in flight (submitting to process
/// `client mod n`), replacing each command the moment its first commit
/// lands, until `spec.commands` have been issued and committed — the
/// saturation-throughput drive. `warmup` gives the log time to anchor a
/// leader before measurement; `horizon` bounds the run.
pub fn run_closed_loop<P>(
    cfg: SimConfig,
    protocol: P,
    spec: &ClosedLoopSpec,
    warmup: SimTime,
    horizon: SimTime,
) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let mut world = World::new(cfg, protocol);
    world.run_until(warmup);
    run_closed_loop_on(&mut world, spec, horizon)
}

/// [`run_closed_loop`] with typed tracing enabled from before the warmup
/// (so anchor-establishment events are captured too); see
/// [`run_open_loop_traced`] for the tracing contract.
pub fn run_closed_loop_traced<P>(
    cfg: SimConfig,
    protocol: P,
    spec: &ClosedLoopSpec,
    warmup: SimTime,
    horizon: SimTime,
    trace_capacity: usize,
) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let mut world = World::new(cfg, protocol);
    world.enable_typed_trace(trace_capacity);
    world.run_until(warmup);
    run_closed_loop_on(&mut world, spec, horizon)
}

/// [`run_closed_loop`] with always-on metering enabled from before the
/// warmup: the world samples a cluster-wide [`MetricsSnapshot`] every
/// `interval` of simulated time, evaluates the online watchdogs on each,
/// and the outcome's summary carries the whole series in its `health`
/// section (schema v7). Metering shares tracing's sans-IO seam, so apart
/// from the extra field the outcome is bit-identical to the unmetered
/// run.
///
/// [`MetricsSnapshot`]: esync_metrics::MetricsSnapshot
pub fn run_closed_loop_metered<P>(
    cfg: SimConfig,
    protocol: P,
    spec: &ClosedLoopSpec,
    warmup: SimTime,
    horizon: SimTime,
    interval: esync_core::time::RealDuration,
    watchdogs: esync_metrics::WatchdogConfig,
) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let mut world = World::new(cfg, protocol);
    world.enable_metrics(interval, watchdogs);
    world.run_until(warmup);
    run_closed_loop_on(&mut world, spec, horizon)
}

/// [`run_open_loop`] with always-on metering; see
/// [`run_closed_loop_metered`] for the metering contract.
pub fn run_open_loop_metered<P>(
    cfg: SimConfig,
    protocol: P,
    horizon: SimTime,
    interval: esync_core::time::RealDuration,
    watchdogs: esync_metrics::WatchdogConfig,
) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    let n = cfg.timing.n();
    let spec_window = default_timeline_window(&cfg);
    let mut collector = Collector::new(Some(cfg.ts.as_nanos()), spec_window);
    collector.reserve_shards(protocol.shard_count());
    for stream in &cfg.scenario.streams {
        for (at, _, value) in stream.expand(n) {
            collector.on_submit(value, at.as_nanos());
        }
    }
    let mut world = World::new(cfg, protocol);
    world.enable_metrics(interval, watchdogs);
    world.run_until(horizon);
    for c in world.commits() {
        collector.on_commit(c.pid, c.shard, c.value, c.at.as_nanos());
    }
    collector.set_shard_loads(&shard_loads(&world));
    finish(collector, &mut world)
}

/// [`run_closed_loop`] over a caller-prepared world: the world has
/// already been constructed and warmed up (and may carry injected
/// events — this is the reuse point for fault drives that pick a victim
/// *after* observing the warm state, e.g. `tests/leader_churn.rs`
/// crashing whichever process anchored). Exactly the canonical
/// closed-loop drive: any future change to the loop is shared by the
/// experiments and the fault scenarios.
pub fn run_closed_loop_on<P>(
    world: &mut World<P>,
    spec: &ClosedLoopSpec,
    horizon: SimTime,
) -> SimWorkloadOutcome
where
    P: Protocol,
    P::Process: ShardedLogView,
{
    assert!(spec.clients >= 1, "at least one client");
    assert!(spec.outstanding >= 1, "at least one in-flight command");
    let n = world.config().timing.n();
    let ts = world.config().ts.as_nanos();
    let mut collector = Collector::new(Some(ts), spec.timeline_window);
    collector.reserve_shards(world.process(ProcessId::new(0)).shard_count());
    let mut gen = CommandGen::for_spec(spec);
    let mut owner: BTreeMap<u64, u32> = BTreeMap::new();
    for client in 0..spec.clients as u32 {
        for _ in 0..spec.outstanding {
            submit_one(world, &mut gen, &mut collector, &mut owner, n, client, spec);
        }
    }
    // Commits from before this drive (a caller's warmup) carry ids the
    // collector never saw submitted, so scanning them is a no-op; start
    // the cursor past them anyway.
    let mut cursor = world.commits().len();
    while collector.committed() < spec.commands && world.now() < horizon {
        if !world.step() {
            break; // quiescent: nothing left that could commit
        }
        while cursor < world.commits().len() {
            let c = world.commits()[cursor];
            cursor += 1;
            if let Some(id) = collector.on_commit(c.pid, c.shard, c.value, c.at.as_nanos()) {
                let client = owner[&id];
                submit_one(world, &mut gen, &mut collector, &mut owner, n, client, spec);
            }
        }
    }
    collector.set_shard_loads(&shard_loads(world));
    finish(collector, world)
}

/// Issues the next command for `client`, if the budget allows.
fn submit_one<P: Protocol>(
    world: &mut World<P>,
    gen: &mut CommandGen,
    collector: &mut Collector,
    owner: &mut BTreeMap<u64, u32>,
    n: usize,
    client: u32,
    spec: &ClosedLoopSpec,
) {
    if gen.issued() >= spec.commands {
        return;
    }
    let value = gen.next_command();
    owner.insert(kv_id(value), client);
    let now = world.now();
    collector.on_submit(value, now.as_nanos());
    world.submit(now, spec.target_of(client, n), value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use esync_core::paxos::group::LogGroup;
    use esync_core::paxos::multi::MultiPaxos;
    use esync_sim::scenario::SubmitStream;
    use esync_sim::{PreStability, Scenario};

    fn stable_cfg(n: usize, seed: u64) -> SimConfig {
        SimConfig::builder(n)
            .seed(seed)
            .stability_at_millis(0)
            .pre_stability(PreStability::lossless())
            .build()
            .unwrap()
    }

    #[test]
    fn closed_loop_commits_everything() {
        let spec = ClosedLoopSpec::new(3, 2, 40).seed(1);
        let out = run_closed_loop(
            stable_cfg(3, 1),
            MultiPaxos::new(),
            &spec,
            SimTime::from_millis(500),
            SimTime::from_secs(60),
        );
        assert_eq!(out.summary.submitted, 40);
        assert_eq!(out.summary.committed, 40);
        assert!(out.summary.commits_per_sec > 0.0);
        assert_eq!(out.summary.latency.count, 40);
        assert!(out.summary.latency.p50_ns > 0);
        assert!(out.log_agreement);
    }

    #[test]
    fn closed_loop_is_bit_identical_across_reruns() {
        let spec = ClosedLoopSpec::new(2, 4, 60).seed(9);
        let run = || {
            run_closed_loop(
                stable_cfg(5, 7),
                MultiPaxos::new().with_batching(4, 2),
                &spec,
                SimTime::from_millis(500),
                SimTime::from_secs(60),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.summary, b.summary, "same seeds, same measurements");
        assert_eq!(a.report, b.report);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn open_loop_scores_stream_commands() {
        let stream = SubmitStream::fixed_rate(
            SimTime::from_millis(400),
            esync_core::time::RealDuration::from_millis(5),
            30,
        )
        .keyed(64)
        .seed(2);
        let mut cfg = stable_cfg(3, 3);
        cfg.scenario = Scenario::none().stream(stream);
        let out = run_open_loop(cfg, MultiPaxos::new(), SimTime::from_secs(3));
        assert_eq!(out.summary.submitted, 30);
        assert_eq!(out.summary.committed, 30);
        assert!(out.log_agreement);
        assert!(out.summary.post_ts.is_some(), "TS=0: all post-stability");
        assert!(out.summary.pre_ts.is_none());
        assert_eq!(out.summary.timeline.iter().sum::<u64>(), 30);
    }

    #[test]
    fn open_loop_is_bit_identical_across_reruns() {
        let mk = || {
            let stream = SubmitStream::poisson(
                SimTime::from_millis(100),
                esync_core::time::RealDuration::from_millis(4),
                50,
            )
            .keyed(32)
            .seed(11);
            let mut cfg = SimConfig::builder(3)
                .seed(5)
                .stability_at_millis(300)
                .pre_stability(PreStability::chaos())
                .build()
                .unwrap();
            cfg.scenario = Scenario::none().stream(stream);
            run_open_loop(cfg, MultiPaxos::new(), SimTime::from_secs(5))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn closed_loop_drives_a_sharded_group() {
        let spec = ClosedLoopSpec::new(4, 4, 80).seed(3).key_space(256);
        let out = run_closed_loop(
            stable_cfg(3, 2),
            LogGroup::new(4),
            &spec,
            SimTime::from_millis(500),
            SimTime::from_secs(60),
        );
        assert_eq!(out.summary.committed, 80);
        assert!(out.log_agreement, "per-shard slot agreement");
        assert_eq!(out.summary.per_shard.len(), 4, "all shards saw traffic");
        assert_eq!(
            out.summary.per_shard.iter().map(|s| s.committed).sum::<u64>(),
            80,
            "shard split partitions the commits"
        );
        assert!(
            out.summary.per_shard.iter().all(|s| s.committed > 0),
            "uniform keys reach every shard: {:?}",
            out.summary.per_shard.iter().map(|s| s.committed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn traced_run_measures_phases_without_perturbing_the_run() {
        let spec = ClosedLoopSpec::new(3, 2, 40).seed(1);
        let run = |traced| {
            let cfg = stable_cfg(3, 1);
            let warmup = SimTime::from_millis(500);
            let horizon = SimTime::from_secs(60);
            if traced {
                run_closed_loop_traced(cfg, MultiPaxos::new(), &spec, warmup, horizon, 1 << 16)
            } else {
                run_closed_loop(cfg, MultiPaxos::new(), &spec, warmup, horizon)
            }
        };
        let plain = run(false);
        let traced = run(true);
        assert!(plain.trace.is_empty() && plain.summary.phase_latency.is_none());
        assert!(!traced.trace.is_empty());
        let phases = traced.summary.phase_latency.as_ref().expect("decomposition");
        assert_eq!(phases.decisions, 40, "every command decomposed");
        assert_eq!(phases.queue.count, 40);
        assert_eq!(phases.quorum.count, 40);
        // Tracing is observational: strip the extra fields and the two
        // runs must be bit-identical.
        let mut stripped = traced.summary.clone();
        stripped.phase_latency = None;
        assert_eq!(stripped, plain.summary);
        assert_eq!(traced.report, plain.report);
        assert_eq!(traced.end, plain.end);
    }

    #[test]
    fn metered_run_attaches_health_without_perturbing_the_run() {
        let spec = ClosedLoopSpec::new(3, 2, 40).seed(1);
        let run = |metered| {
            let cfg = stable_cfg(3, 1);
            let warmup = SimTime::from_millis(500);
            let horizon = SimTime::from_secs(60);
            if metered {
                run_closed_loop_metered(
                    cfg,
                    MultiPaxos::new(),
                    &spec,
                    warmup,
                    horizon,
                    esync_core::time::RealDuration::from_millis(50),
                    esync_metrics::WatchdogConfig::default(),
                )
            } else {
                run_closed_loop(cfg, MultiPaxos::new(), &spec, warmup, horizon)
            }
        };
        let plain = run(false);
        let metered = run(true);
        assert!(plain.summary.health.is_none());
        let health = metered.summary.health.as_ref().expect("health section");
        assert_eq!(health.interval_ns, 50_000_000);
        assert!(!health.snapshots.is_empty());
        // Sim snapshots are cluster-wide (node = None) and stamped at
        // exact cadence boundaries.
        assert!(health.snapshots.iter().all(|s| s.node.is_none()));
        assert!(health
            .snapshots
            .iter()
            .enumerate()
            .all(|(i, s)| s.at_ns == (i as u64 + 1) * 50_000_000));
        // A stable closed loop trips no watchdog and drops no trace.
        assert_eq!(health.firings, vec![]);
        assert_eq!(health.trace_dropped, 0);
        // Metering is observational: strip the extra field and the two
        // runs must be bit-identical.
        let mut stripped = metered.summary.clone();
        stripped.health = None;
        assert_eq!(stripped, plain.summary);
        assert_eq!(metered.report, plain.report);
        assert_eq!(metered.end, plain.end);
    }

    #[test]
    fn open_loop_splits_latency_at_stability() {
        // Submissions straddle TS=300ms under chaos: the pre-TS side must
        // be recorded separately and be slower in the tail.
        let stream = SubmitStream::fixed_rate(
            SimTime::from_millis(50),
            esync_core::time::RealDuration::from_millis(25),
            40,
        )
        .keyed(16)
        .seed(4);
        let mut cfg = SimConfig::builder(5)
            .seed(6)
            .stability_at_millis(300)
            .pre_stability(PreStability::chaos())
            .build()
            .unwrap();
        cfg.scenario = Scenario::none().stream(stream);
        let out = run_open_loop(cfg, MultiPaxos::new(), SimTime::from_secs(10));
        let pre = out.summary.pre_ts.expect("pre-TS submissions exist");
        let post = out.summary.post_ts.expect("post-TS submissions exist");
        assert!(pre.count > 0 && post.count > 0);
        assert_eq!(
            pre.count + post.count,
            out.summary.latency.count,
            "split partitions the histogram"
        );
    }
}
