//! Latency/throughput collection from per-command commit feeds.

use esync_core::outbox::ShardLoad;
use esync_core::time::RealDuration;
use esync_core::types::{ProcessId, ShardId, Value};
use esync_sim::metrics::{LatencyHistogram, ShardSummary, ThroughputTimeline, WorkloadSummary};
use esync_sim::scenario::kv_id;
use esync_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// One shard's slice of the measurements (see
/// [`ShardSummary`]). Grown on demand as shard tags appear in the feed.
#[derive(Debug, Default)]
struct ShardAcc {
    committed: u64,
    duplicates: u64,
    latency: LatencyHistogram,
    pre_ts: LatencyHistogram,
    post_ts: LatencyHistogram,
    first_submit_ns: Option<u64>,
    last_commit_ns: Option<u64>,
}

/// Accumulates a workload run's measurements from its submit and commit
/// events, backend-agnostically: the simulator feeds nanoseconds of
/// simulated time, the threaded runtime nanoseconds of wall time since
/// cluster start.
///
/// Latency is measured **submission → first commit anywhere**; a command
/// re-applied at the same process under a second slot (the at-least-once
/// path across leadership changes) counts as a duplicate, while the normal
/// one-commit-per-process fan-out does not.
///
/// Commits arrive shard-tagged (see
/// [`CommitRecord::shard`](esync_sim::metrics::CommitRecord) and
/// [`esync_runtime::Commit`](esync_runtime::cluster::Commit)); besides
/// the aggregate, the collector keeps one accumulator per shard, so the
/// summary reports the per-shard throughput/latency split of schema v3.
/// A command's shard is learned at its first commit — commands that
/// never commit count toward the aggregate's submitted/span but toward
/// no shard (see `ShardSummary::commits_per_sec`).
#[derive(Debug)]
pub struct Collector {
    /// The stabilization instant splitting the pre/post histograms, if the
    /// run has one.
    ts_ns: Option<u64>,
    /// Submit instant per tracked command id.
    submit_ns: BTreeMap<u64, u64>,
    /// Ids whose first commit has been seen.
    committed: BTreeSet<u64>,
    /// `(pid, id)` pairs seen, to detect per-process re-application.
    applied: BTreeSet<(u32, u64)>,
    duplicates: u64,
    latency: LatencyHistogram,
    pre_ts: LatencyHistogram,
    post_ts: LatencyHistogram,
    timeline: ThroughputTimeline,
    /// Per-shard accumulators, indexed by shard; shard 0 exists from the
    /// first commit, higher shards as their tags appear.
    shards: Vec<ShardAcc>,
    /// Protocol-level per-shard load counters (schema v5), installed by
    /// the driver after the run via [`Collector::set_shard_loads`].
    shard_loads: Vec<ShardLoad>,
    first_submit_ns: Option<u64>,
    last_commit_ns: Option<u64>,
}

impl Collector {
    /// Creates a collector; `ts_ns` enables the pre/post-stability split.
    pub fn new(ts_ns: Option<u64>, timeline_window: RealDuration) -> Self {
        Collector {
            ts_ns,
            submit_ns: BTreeMap::new(),
            committed: BTreeSet::new(),
            applied: BTreeSet::new(),
            duplicates: 0,
            latency: LatencyHistogram::new(),
            pre_ts: LatencyHistogram::new(),
            post_ts: LatencyHistogram::new(),
            timeline: ThroughputTimeline::new(timeline_window),
            shards: Vec::new(),
            shard_loads: Vec::new(),
            first_submit_ns: None,
            last_commit_ns: None,
        }
    }

    /// Installs the protocol-level per-shard load counters (summed over
    /// processes by the driver; see
    /// [`Process::shard_load`](esync_core::outbox::Process::shard_load)),
    /// which the summary surfaces as the schema-v5 `submitted`/`admitted`
    /// fields of each [`ShardSummary`].
    pub fn set_shard_loads(&mut self, loads: &[ShardLoad]) {
        self.shard_loads = loads.to_vec();
        self.reserve_shards(loads.len());
    }

    /// Pre-sizes the per-shard accounting to at least `shards` entries
    /// (drivers pass [`Protocol::shard_count`](esync_core::outbox::Protocol::shard_count)),
    /// so shards that never commit — skewed keys, a dead range — still
    /// appear as explicit zeroed [`ShardSummary`]s instead of being
    /// silently absent.
    pub fn reserve_shards(&mut self, shards: usize) {
        if shards > self.shards.len() {
            self.shards.resize_with(shards, ShardAcc::default);
        }
    }

    /// Registers a submission of `value` at `at_ns`.
    pub fn on_submit(&mut self, value: Value, at_ns: u64) {
        let id = kv_id(value);
        self.submit_ns.entry(id).or_insert(at_ns);
        if self.first_submit_ns.is_none_or(|t| at_ns < t) {
            self.first_submit_ns = Some(at_ns);
        }
    }

    /// Registers a commit of `value` in log-group shard `shard` at process
    /// `pid` at `at_ns`. Returns the command id if this is the command's
    /// **first** commit anywhere (the closed-loop driver's cue to submit a
    /// replacement); untracked ids are ignored.
    pub fn on_commit(
        &mut self,
        pid: ProcessId,
        shard: ShardId,
        value: Value,
        at_ns: u64,
    ) -> Option<u64> {
        let id = kv_id(value);
        let submit = *self.submit_ns.get(&id)?;
        let s = shard.as_usize();
        if s >= self.shards.len() {
            self.shards.resize_with(s + 1, ShardAcc::default);
        }
        if !self.applied.insert((pid.as_u32(), id)) {
            self.duplicates += 1;
            self.shards[s].duplicates += 1;
        }
        if !self.committed.insert(id) {
            return None;
        }
        let lat = at_ns.saturating_sub(submit);
        self.latency.record(lat);
        match self.ts_ns {
            Some(ts) if submit < ts => self.pre_ts.record(lat),
            Some(_) => self.post_ts.record(lat),
            None => {}
        }
        self.timeline.record(SimTime::from_nanos(at_ns));
        if self.last_commit_ns.is_none_or(|t| at_ns > t) {
            self.last_commit_ns = Some(at_ns);
        }
        let acc = &mut self.shards[s];
        acc.committed += 1;
        acc.latency.record(lat);
        match self.ts_ns {
            Some(ts) if submit < ts => acc.pre_ts.record(lat),
            Some(_) => acc.post_ts.record(lat),
            None => {}
        }
        if acc.first_submit_ns.is_none_or(|t| submit < t) {
            acc.first_submit_ns = Some(submit);
        }
        if acc.last_commit_ns.is_none_or(|t| at_ns > t) {
            acc.last_commit_ns = Some(at_ns);
        }
        Some(id)
    }

    /// Commands submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submit_ns.len() as u64
    }

    /// Distinct commands committed so far.
    pub fn committed(&self) -> u64 {
        self.committed.len() as u64
    }

    /// Builds the summary of everything recorded.
    pub fn summary(&self) -> WorkloadSummary {
        let span_ns = match (self.first_submit_ns, self.last_commit_ns) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => 0,
        };
        let measured_secs = span_ns as f64 / 1e9;
        // Max-over-mean of the per-shard committed counts (v5): 1.0 is
        // balanced, S is one-shard-takes-all, 0.0 is nothing committed.
        let shard_imbalance = {
            let shards = self.shards.len().max(1);
            let total: u64 = self.shards.iter().map(|a| a.committed).sum();
            let max = self.shards.iter().map(|a| a.committed).max().unwrap_or(0);
            if total == 0 {
                0.0
            } else {
                max as f64 / (total as f64 / shards as f64)
            }
        };
        WorkloadSummary {
            submitted: self.submitted(),
            committed: self.committed(),
            duplicate_commits: self.duplicates,
            measured_secs,
            commits_per_sec: if span_ns > 0 {
                self.committed() as f64 / measured_secs
            } else {
                0.0
            },
            latency: self.latency.summary(),
            pre_ts: (self.ts_ns.is_some() && !self.pre_ts.is_empty())
                .then(|| self.pre_ts.summary()),
            post_ts: (self.ts_ns.is_some() && !self.post_ts.is_empty())
                .then(|| self.post_ts.summary()),
            timeline: self.timeline.counts().to_vec(),
            timeline_window_ms: self.timeline.window().as_millis_f64(),
            // Schema v3 guarantees at least a shard-0 entry (mirroring
            // the aggregate for unsharded runs), including the
            // nothing-committed case where no commit ever grew the
            // accumulator vector.
            per_shard: {
                let empty_shard0 = [ShardAcc::default()];
                let accs: &[ShardAcc] = if self.shards.is_empty() {
                    &empty_shard0
                } else {
                    &self.shards
                };
                accs.iter()
                    .enumerate()
                    .map(|(s, acc)| {
                        let span_ns = match (acc.first_submit_ns, acc.last_commit_ns) {
                            (Some(a), Some(b)) if b > a => b - a,
                            _ => 0,
                        };
                        let load = self.shard_loads.get(s).copied().unwrap_or_default();
                        ShardSummary {
                            shard: s as u32,
                            submitted: load.submitted,
                            admitted: load.admitted,
                            committed: acc.committed,
                            duplicate_commits: acc.duplicates,
                            commits_per_sec: if span_ns > 0 {
                                acc.committed as f64 / (span_ns as f64 / 1e9)
                            } else {
                                0.0
                            },
                            latency: acc.latency.summary(),
                            pre_ts: (self.ts_ns.is_some() && !acc.pre_ts.is_empty())
                                .then(|| acc.pre_ts.summary()),
                            post_ts: (self.ts_ns.is_some() && !acc.post_ts.is_empty())
                                .then(|| acc.post_ts.summary()),
                        }
                    })
                    .collect()
            },
            shard_imbalance,
            // Attached by the driver after the run when typed tracing
            // (respectively metering) was enabled — the collector sees
            // neither trace records nor metric snapshots.
            phase_latency: None,
            health: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esync_sim::scenario::kv_command;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn first_commit_measures_latency() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        let v = kv_command(3, 0);
        c.on_submit(v, 5 * MS);
        assert_eq!(c.on_commit(pid(0), ShardId::ZERO, v, 9 * MS), Some(0), "first commit");
        assert_eq!(c.on_commit(pid(1), ShardId::ZERO, v, 10 * MS), None, "fan-out, not first");
        let s = c.summary();
        assert_eq!(s.submitted, 1);
        assert_eq!(s.committed, 1);
        assert_eq!(s.duplicate_commits, 0, "per-process fan-out is not a dup");
        assert_eq!(s.latency.count, 1);
        assert_eq!(s.latency.min_ns, 4 * MS);
    }

    #[test]
    fn reapplication_counts_as_duplicate() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        let v = kv_command(0, 7);
        c.on_submit(v, 0);
        c.on_commit(pid(0), ShardId::ZERO, v, MS);
        // Same process applies id 7 again (second slot): a duplicate.
        c.on_commit(pid(0), ShardId::ZERO, v, 2 * MS);
        assert_eq!(c.summary().duplicate_commits, 1);
        assert_eq!(c.summary().committed, 1);
    }

    #[test]
    fn untracked_ids_are_ignored() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        assert_eq!(c.on_commit(pid(0), ShardId::ZERO, Value::new(42), MS), None);
        assert_eq!(c.summary().committed, 0);
    }

    #[test]
    fn pre_post_split_by_submit_time() {
        let ts = 100 * MS;
        let mut c = Collector::new(Some(ts), RealDuration::from_millis(10));
        let early = kv_command(0, 0);
        let late = kv_command(0, 1);
        c.on_submit(early, 50 * MS);
        c.on_submit(late, 150 * MS);
        c.on_commit(pid(0), ShardId::ZERO, early, 120 * MS); // submitted pre-TS
        c.on_commit(pid(0), ShardId::ZERO, late, 152 * MS); // submitted post-TS
        let s = c.summary();
        assert_eq!(s.pre_ts.as_ref().unwrap().count, 1);
        assert_eq!(s.pre_ts.as_ref().unwrap().min_ns, 70 * MS);
        assert_eq!(s.post_ts.as_ref().unwrap().count, 1);
        assert_eq!(s.post_ts.as_ref().unwrap().min_ns, 2 * MS);
    }

    #[test]
    fn per_shard_split_attributes_commits_and_duplicates() {
        let ts = 100 * MS;
        let mut c = Collector::new(Some(ts), RealDuration::from_millis(10));
        let a = kv_command(0, 0); // shard 0
        let b = kv_command(1, 1); // shard 1
        c.on_submit(a, 0);
        c.on_submit(b, 150 * MS);
        c.on_commit(pid(0), ShardId::new(0), a, 10 * MS);
        c.on_commit(pid(0), ShardId::new(1), b, 160 * MS);
        // Shard 1 re-applies b at the same pid: a shard-1 duplicate.
        c.on_commit(pid(0), ShardId::new(1), b, 170 * MS);
        let s = c.summary();
        assert_eq!(s.per_shard.len(), 2);
        assert_eq!(s.per_shard[0].shard, 0);
        assert_eq!(s.per_shard[0].committed, 1);
        assert_eq!(s.per_shard[0].duplicate_commits, 0);
        assert_eq!(s.per_shard[0].latency.count, 1);
        assert_eq!(s.per_shard[0].pre_ts.as_ref().unwrap().count, 1);
        assert!(s.per_shard[0].post_ts.is_none());
        assert_eq!(s.per_shard[1].committed, 1);
        assert_eq!(s.per_shard[1].duplicate_commits, 1);
        assert_eq!(s.per_shard[1].post_ts.as_ref().unwrap().count, 1);
        // Per-shard throughput uses the shard's own span.
        assert!((s.per_shard[1].commits_per_sec - 100.0).abs() < 1e-9);
        assert_eq!(
            s.per_shard.iter().map(|x| x.committed).sum::<u64>(),
            s.committed
        );
    }

    #[test]
    fn unsharded_runs_mirror_the_aggregate_in_shard_zero() {
        // Counts, latency and (with every submission committing, as
        // here) the span-derived throughput all coincide with the
        // aggregate; lossy runs keep the count/latency mirror but not
        // the throughput one (never-committed submissions open the
        // aggregate span only).
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        for id in 0..5u64 {
            let v = kv_command(0, id);
            c.on_submit(v, id * MS);
            c.on_commit(pid(0), ShardId::ZERO, v, (id + 2) * MS);
        }
        let s = c.summary();
        assert_eq!(s.per_shard.len(), 1);
        assert_eq!(s.per_shard[0].committed, s.committed);
        assert_eq!(s.per_shard[0].latency, s.latency);
        assert!((s.per_shard[0].commits_per_sec - s.commits_per_sec).abs() < 1e-9);
    }

    #[test]
    fn reserved_shards_report_zeroed_entries_even_without_commits() {
        // A trailing shard that never commits (skewed keys, dead range)
        // must appear as an explicit zero entry, so consumers can tell
        // "shard 2 committed nothing" from "the run had 2 shards".
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        c.reserve_shards(3);
        let v = kv_command(0, 0);
        c.on_submit(v, 0);
        c.on_commit(pid(0), ShardId::ZERO, v, MS);
        let s = c.summary();
        assert_eq!(s.per_shard.len(), 3);
        assert_eq!(s.per_shard[0].committed, 1);
        assert_eq!(s.per_shard[2].shard, 2);
        assert_eq!(s.per_shard[2].committed, 0);
        assert_eq!(s.per_shard[2].latency.count, 0);
    }

    #[test]
    fn empty_run_still_reports_a_shard_zero_entry() {
        // Schema v3: per_shard always holds at least shard 0, even when
        // nothing committed before the horizon.
        let c = Collector::new(Some(MS), RealDuration::from_millis(10));
        let s = c.summary();
        assert_eq!(s.per_shard.len(), 1);
        assert_eq!(s.per_shard[0].shard, 0);
        assert_eq!(s.per_shard[0].committed, 0);
        assert_eq!(s.per_shard[0].latency.count, 0);
        assert!(s.per_shard[0].pre_ts.is_none() && s.per_shard[0].post_ts.is_none());
    }

    #[test]
    fn shard_loads_and_imbalance_surface_in_the_summary() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        c.reserve_shards(2);
        // Three commits in shard 0, one in shard 1: max/mean = 3/2.
        for (id, shard) in [(0u64, 0u32), (1, 0), (2, 0), (3, 1)] {
            let v = kv_command(shard as u64, id);
            c.on_submit(v, id * MS);
            c.on_commit(pid(0), ShardId::new(shard), v, (id + 1) * MS);
        }
        c.set_shard_loads(&[
            ShardLoad { submitted: 7, admitted: 3 },
            ShardLoad { submitted: 2, admitted: 1 },
        ]);
        let s = c.summary();
        assert_eq!(s.per_shard[0].submitted, 7);
        assert_eq!(s.per_shard[0].admitted, 3);
        assert_eq!(s.per_shard[1].submitted, 2);
        assert_eq!(s.per_shard[1].admitted, 1);
        assert!((s.shard_imbalance - 1.5).abs() < 1e-9, "{}", s.shard_imbalance);
        // Without loads the counters default to zero, and an empty run
        // reports zero imbalance.
        let empty = Collector::new(None, RealDuration::from_millis(10)).summary();
        assert_eq!(empty.per_shard[0].submitted, 0);
        assert_eq!(empty.shard_imbalance, 0.0);
    }

    #[test]
    fn single_shard_imbalance_is_exactly_one() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        let v = kv_command(0, 0);
        c.on_submit(v, 0);
        c.on_commit(pid(0), ShardId::ZERO, v, MS);
        assert!((c.summary().shard_imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_over_measured_span() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        for id in 0..10u64 {
            let v = kv_command(0, id);
            c.on_submit(v, 0);
            c.on_commit(pid(0), ShardId::ZERO, v, (id + 1) * 100 * MS);
        }
        let s = c.summary();
        // 10 commits over exactly 1 second (0 .. 1000ms).
        assert!((s.commits_per_sec - 10.0).abs() < 1e-9, "{}", s.commits_per_sec);
        assert_eq!(s.timeline.iter().sum::<u64>(), 10);
    }
}
