//! Latency/throughput collection from per-command commit feeds.

use esync_core::time::RealDuration;
use esync_core::types::{ProcessId, Value};
use esync_sim::metrics::{LatencyHistogram, ThroughputTimeline, WorkloadSummary};
use esync_sim::scenario::kv_id;
use esync_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Accumulates a workload run's measurements from its submit and commit
/// events, backend-agnostically: the simulator feeds nanoseconds of
/// simulated time, the threaded runtime nanoseconds of wall time since
/// cluster start.
///
/// Latency is measured **submission → first commit anywhere**; a command
/// re-applied at the same process under a second slot (the at-least-once
/// path across leadership changes) counts as a duplicate, while the normal
/// one-commit-per-process fan-out does not.
#[derive(Debug)]
pub struct Collector {
    /// The stabilization instant splitting the pre/post histograms, if the
    /// run has one.
    ts_ns: Option<u64>,
    /// Submit instant per tracked command id.
    submit_ns: BTreeMap<u64, u64>,
    /// Ids whose first commit has been seen.
    committed: BTreeSet<u64>,
    /// `(pid, id)` pairs seen, to detect per-process re-application.
    applied: BTreeSet<(u32, u64)>,
    duplicates: u64,
    latency: LatencyHistogram,
    pre_ts: LatencyHistogram,
    post_ts: LatencyHistogram,
    timeline: ThroughputTimeline,
    first_submit_ns: Option<u64>,
    last_commit_ns: Option<u64>,
}

impl Collector {
    /// Creates a collector; `ts_ns` enables the pre/post-stability split.
    pub fn new(ts_ns: Option<u64>, timeline_window: RealDuration) -> Self {
        Collector {
            ts_ns,
            submit_ns: BTreeMap::new(),
            committed: BTreeSet::new(),
            applied: BTreeSet::new(),
            duplicates: 0,
            latency: LatencyHistogram::new(),
            pre_ts: LatencyHistogram::new(),
            post_ts: LatencyHistogram::new(),
            timeline: ThroughputTimeline::new(timeline_window),
            first_submit_ns: None,
            last_commit_ns: None,
        }
    }

    /// Registers a submission of `value` at `at_ns`.
    pub fn on_submit(&mut self, value: Value, at_ns: u64) {
        let id = kv_id(value);
        self.submit_ns.entry(id).or_insert(at_ns);
        if self.first_submit_ns.is_none_or(|t| at_ns < t) {
            self.first_submit_ns = Some(at_ns);
        }
    }

    /// Registers a commit of `value` at process `pid` at `at_ns`. Returns
    /// the command id if this is the command's **first** commit anywhere
    /// (the closed-loop driver's cue to submit a replacement); untracked
    /// ids are ignored.
    pub fn on_commit(&mut self, pid: ProcessId, value: Value, at_ns: u64) -> Option<u64> {
        let id = kv_id(value);
        let submit = *self.submit_ns.get(&id)?;
        if !self.applied.insert((pid.as_u32(), id)) {
            self.duplicates += 1;
        }
        if !self.committed.insert(id) {
            return None;
        }
        let lat = at_ns.saturating_sub(submit);
        self.latency.record(lat);
        match self.ts_ns {
            Some(ts) if submit < ts => self.pre_ts.record(lat),
            Some(_) => self.post_ts.record(lat),
            None => {}
        }
        self.timeline.record(SimTime::from_nanos(at_ns));
        if self.last_commit_ns.is_none_or(|t| at_ns > t) {
            self.last_commit_ns = Some(at_ns);
        }
        Some(id)
    }

    /// Commands submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submit_ns.len() as u64
    }

    /// Distinct commands committed so far.
    pub fn committed(&self) -> u64 {
        self.committed.len() as u64
    }

    /// Builds the summary of everything recorded.
    pub fn summary(&self) -> WorkloadSummary {
        let span_ns = match (self.first_submit_ns, self.last_commit_ns) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => 0,
        };
        let measured_secs = span_ns as f64 / 1e9;
        WorkloadSummary {
            submitted: self.submitted(),
            committed: self.committed(),
            duplicate_commits: self.duplicates,
            measured_secs,
            commits_per_sec: if span_ns > 0 {
                self.committed() as f64 / measured_secs
            } else {
                0.0
            },
            latency: self.latency.summary(),
            pre_ts: (self.ts_ns.is_some() && !self.pre_ts.is_empty())
                .then(|| self.pre_ts.summary()),
            post_ts: (self.ts_ns.is_some() && !self.post_ts.is_empty())
                .then(|| self.post_ts.summary()),
            timeline: self.timeline.counts().to_vec(),
            timeline_window_ms: self.timeline.window().as_millis_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esync_sim::scenario::kv_command;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn first_commit_measures_latency() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        let v = kv_command(3, 0);
        c.on_submit(v, 5 * MS);
        assert_eq!(c.on_commit(pid(0), v, 9 * MS), Some(0), "first commit");
        assert_eq!(c.on_commit(pid(1), v, 10 * MS), None, "fan-out, not first");
        let s = c.summary();
        assert_eq!(s.submitted, 1);
        assert_eq!(s.committed, 1);
        assert_eq!(s.duplicate_commits, 0, "per-process fan-out is not a dup");
        assert_eq!(s.latency.count, 1);
        assert_eq!(s.latency.min_ns, 4 * MS);
    }

    #[test]
    fn reapplication_counts_as_duplicate() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        let v = kv_command(0, 7);
        c.on_submit(v, 0);
        c.on_commit(pid(0), v, MS);
        // Same process applies id 7 again (second slot): a duplicate.
        c.on_commit(pid(0), v, 2 * MS);
        assert_eq!(c.summary().duplicate_commits, 1);
        assert_eq!(c.summary().committed, 1);
    }

    #[test]
    fn untracked_ids_are_ignored() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        assert_eq!(c.on_commit(pid(0), Value::new(42), MS), None);
        assert_eq!(c.summary().committed, 0);
    }

    #[test]
    fn pre_post_split_by_submit_time() {
        let ts = 100 * MS;
        let mut c = Collector::new(Some(ts), RealDuration::from_millis(10));
        let early = kv_command(0, 0);
        let late = kv_command(0, 1);
        c.on_submit(early, 50 * MS);
        c.on_submit(late, 150 * MS);
        c.on_commit(pid(0), early, 120 * MS); // submitted pre-TS
        c.on_commit(pid(0), late, 152 * MS); // submitted post-TS
        let s = c.summary();
        assert_eq!(s.pre_ts.as_ref().unwrap().count, 1);
        assert_eq!(s.pre_ts.as_ref().unwrap().min_ns, 70 * MS);
        assert_eq!(s.post_ts.as_ref().unwrap().count, 1);
        assert_eq!(s.post_ts.as_ref().unwrap().min_ns, 2 * MS);
    }

    #[test]
    fn throughput_over_measured_span() {
        let mut c = Collector::new(None, RealDuration::from_millis(10));
        for id in 0..10u64 {
            let v = kv_command(0, id);
            c.on_submit(v, 0);
            c.on_commit(pid(0), v, (id + 1) * 100 * MS);
        }
        let s = c.summary();
        // 10 commits over exactly 1 second (0 .. 1000ms).
        assert!((s.commits_per_sec - 10.0).abs() < 1e-9, "{}", s.commits_per_sec);
        assert_eq!(s.timeline.iter().sum::<u64>(), 10);
    }
}
