//! Deterministic command generation shared by both backends.

use esync_core::time::RealDuration;
use esync_core::types::{ProcessId, Value};
use esync_sim::scenario::kv_command;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

// The key-distribution types live next to `SubmitStream` in
// `esync_sim::scenario` (the open-loop generator embeds them in the
// serialized `SimConfig`); this is their workload-facing home.
pub use esync_sim::scenario::{KeyDist, KeySampler};

/// Parameters of a closed-loop (fixed-concurrency) workload: each of
/// `clients` keeps `outstanding` commands in flight until `commands` have
/// been submitted in total.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopSpec {
    /// Number of logical clients; client `c` submits to process `c mod n`
    /// (or into [`ClosedLoopSpec::targets`], if set).
    pub clients: usize,
    /// Commands each client keeps in flight.
    pub outstanding: usize,
    /// Total commands across all clients.
    pub commands: u64,
    /// Keys are sampled from `0..key_space` (`0` = unkeyed).
    pub key_space: u64,
    /// How keys are drawn from the key space (default uniform; see
    /// [`KeyDist`] for the skewed generators).
    pub key_dist: KeyDist,
    /// Seed of the command generator (keys), independent of the network
    /// seed.
    pub seed: u64,
    /// Window width of the commits-per-window timeline.
    pub timeline_window: RealDuration,
    /// Submission targets: client `c` submits to `targets[c mod len]`.
    /// `None` (the default) spreads clients over all processes
    /// (`c mod n`). Fault drives restrict this to the replicas that stay
    /// up — a command handed to a down process is lost at the client
    /// boundary by design.
    pub targets: Option<Vec<ProcessId>>,
}

impl ClosedLoopSpec {
    /// A spec with `clients` clients × `outstanding` in flight, `commands`
    /// total, 1024 keys, seed 0, and a 50ms timeline window.
    pub fn new(clients: usize, outstanding: usize, commands: u64) -> Self {
        ClosedLoopSpec {
            clients,
            outstanding,
            commands,
            key_space: 1024,
            key_dist: KeyDist::Uniform,
            seed: 0,
            timeline_window: RealDuration::from_millis(50),
            targets: None,
        }
    }

    /// Sets the generator seed (consumed-and-returned for chaining).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the key space.
    #[must_use]
    pub fn key_space(mut self, key_space: u64) -> Self {
        self.key_space = key_space;
        self
    }

    /// Sets the key distribution.
    #[must_use]
    pub fn dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }

    /// Restricts submissions to `targets` (client `c` →
    /// `targets[c mod len]`).
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    #[must_use]
    pub fn targets(mut self, targets: Vec<ProcessId>) -> Self {
        assert!(!targets.is_empty(), "at least one submission target");
        self.targets = Some(targets);
        self
    }

    /// The process client `c` submits to, in an `n`-process system.
    ///
    /// # Panics
    ///
    /// Panics if the configured target is not a process of the system —
    /// a submission to a nonexistent pid would otherwise be dropped
    /// silently (sim) or index out of bounds (runtime), stalling the
    /// closed loop far from the misconfiguration.
    pub fn target_of(&self, client: u32, n: usize) -> ProcessId {
        let pid = match &self.targets {
            Some(t) => t[client as usize % t.len()],
            None => ProcessId::new(client % n as u32),
        };
        assert!(
            pid.as_usize() < n,
            "submission target {pid} is not a process of this {n}-process system"
        );
        pid
    }
}

/// A deterministic source of keyed KV commands: ids are sequential from
/// zero, keys are sampled from the seed. The simulator and threaded
/// drivers draw from identically-configured generators, so both backends
/// submit the same command sequence.
#[derive(Debug, Clone)]
pub struct CommandGen {
    rng: ChaCha8Rng,
    sampler: Option<KeySampler>,
    next_id: u64,
}

impl CommandGen {
    /// Creates a uniform-key generator.
    pub fn new(seed: u64, key_space: u64) -> Self {
        CommandGen::with_dist(seed, key_space, KeyDist::Uniform)
    }

    /// Creates a generator drawing keys from `dist` (see [`KeyDist`];
    /// `Uniform` reproduces [`CommandGen::new`] bit for bit).
    pub fn with_dist(seed: u64, key_space: u64, dist: KeyDist) -> Self {
        CommandGen {
            rng: ChaCha8Rng::seed_from_u64(seed),
            sampler: (key_space > 0).then(|| KeySampler::new(dist, key_space)),
            next_id: 0,
        }
    }

    /// The generator a closed-loop spec describes.
    pub fn for_spec(spec: &ClosedLoopSpec) -> Self {
        CommandGen::with_dist(spec.seed, spec.key_space, spec.key_dist)
    }

    /// Ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next_id
    }

    /// The next command.
    pub fn next_command(&mut self) -> Value {
        let id = self.next_id;
        self.next_id += 1;
        match &self.sampler {
            None => Value::new(id),
            Some(s) => kv_command(s.sample(&mut self.rng, id), id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esync_sim::scenario::{kv_id, kv_key};

    #[test]
    fn command_gen_is_deterministic_and_unique() {
        let mut a = CommandGen::new(5, 64);
        let mut b = CommandGen::new(5, 64);
        let xs: Vec<Value> = (0..100).map(|_| a.next_command()).collect();
        let ys: Vec<Value> = (0..100).map(|_| b.next_command()).collect();
        assert_eq!(xs, ys);
        let mut ids: Vec<u64> = xs.iter().map(|v| kv_id(*v)).collect();
        ids.dedup();
        assert_eq!(ids, (0..100).collect::<Vec<_>>(), "sequential unique ids");
        assert!(xs.iter().all(|v| kv_key(*v) < 64));
        assert_eq!(a.issued(), 100);
    }

    #[test]
    fn unkeyed_gen_emits_bare_ids() {
        let mut g = CommandGen::new(9, 0);
        assert_eq!(g.next_command(), Value::new(0));
        assert_eq!(g.next_command(), Value::new(1));
    }

    #[test]
    fn different_seeds_differ_in_keys() {
        let mut a = CommandGen::new(1, 1 << 16);
        let mut b = CommandGen::new(2, 1 << 16);
        let xs: Vec<Value> = (0..20).map(|_| a.next_command()).collect();
        let ys: Vec<Value> = (0..20).map(|_| b.next_command()).collect();
        assert_ne!(xs, ys);
    }
}
