//! Workload drivers over the threaded real-time runtime.
//!
//! The same generators as [`crate::sim_driver`], driving an
//! [`esync_runtime::Cluster`] over real channels and wall clocks: commands
//! go in through [`Cluster::submit`], measurements come back out of the
//! per-command [`Cluster::commits`] stream. Command *sequences* are
//! bit-identical to the simulator drivers' (same [`CommandGen`], same
//! stream expansion); timings are wall-clock and therefore machine-
//! dependent — the runtime drivers demonstrate the subsystem end-to-end,
//! while the simulator drivers produce the reproducible artifacts.

use crate::collect::Collector;
use crate::gen::{ClosedLoopSpec, CommandGen};
use esync_core::outbox::{Protocol, ShardLoad};
use esync_sim::metrics::WorkloadSummary;
use esync_sim::scenario::{kv_id, SubmitStream};
use esync_runtime::{Cluster, ClusterConfig, NodeStats, RuntimeError};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// A completed threaded-runtime workload run.
#[derive(Debug, Clone)]
pub struct RtWorkloadOutcome {
    /// Throughput and latency measurements (wall-clock nanoseconds).
    pub summary: WorkloadSummary,
    /// Command ids applied per node — agreement means every node's set
    /// converges to the full command set.
    pub applied_per_node: Vec<BTreeSet<u64>>,
    /// Per-node router epochs at shutdown (all zero without live
    /// rebalancing).
    pub router_epochs: Vec<u64>,
    /// Every node's typed trace, concatenated in pid order (each node's
    /// records are stamped on the shared wall axis — monotonic
    /// nanoseconds since cluster start). Empty unless the cluster was
    /// configured with [`ClusterConfig::tracing`].
    pub trace: Vec<esync_trace::TraceRecord>,
}

/// Sums the nodes' final per-shard load counters into the collector's
/// schema-v5 fields and extracts the per-node router epochs.
fn fold_node_stats(
    collector: &mut Collector,
    stats: &[NodeStats],
    shards: usize,
) -> Vec<u64> {
    let mut loads = vec![ShardLoad::default(); shards];
    for node in stats {
        for (s, load) in node.shard_loads.iter().enumerate().take(shards) {
            loads[s].submitted += load.submitted;
            loads[s].admitted += load.admitted;
        }
    }
    collector.set_shard_loads(&loads);
    stats.iter().map(|s| s.router_epoch).collect()
}

/// How long the drivers wait on the commit channel per poll.
const POLL: Duration = Duration::from_millis(20);

/// Runs a **closed-loop** workload against a threaded cluster: spawns the
/// cluster, waits `warmup` for the log to anchor a leader, then keeps
/// `spec.clients × spec.outstanding` commands in flight until
/// `spec.commands` are committed *and applied at every node*, or
/// `deadline` (from cluster start) passes.
///
/// # Errors
///
/// Returns [`RuntimeError::Config`] for invalid timing parameters and
/// [`RuntimeError::Timeout`] if the deadline passes before every command
/// commits everywhere.
pub fn run_closed_loop<P>(
    cfg: ClusterConfig,
    protocol: P,
    spec: &ClosedLoopSpec,
    warmup: Duration,
    deadline: Duration,
) -> Result<RtWorkloadOutcome, RuntimeError>
where
    P: Protocol,
    P::Process: Send + 'static,
    P::Msg: Send + Clone + 'static,
{
    assert!(spec.clients >= 1, "at least one client");
    assert!(spec.outstanding >= 1, "at least one in-flight command");
    let shards = protocol.shard_count();
    let metrics_interval = cfg.metrics_interval();
    let cluster = Cluster::spawn(cfg, protocol)?;
    let n = cluster.n();
    std::thread::sleep(warmup);
    let mut gen = CommandGen::for_spec(spec);
    let mut owner: BTreeMap<u64, u32> = BTreeMap::new();
    let mut collector = Collector::new(None, spec.timeline_window);
    collector.reserve_shards(shards);
    let mut applied: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n];
    for client in 0..spec.clients as u32 {
        for _ in 0..spec.outstanding {
            submit_one(&cluster, &mut gen, &mut collector, &mut owner, client, spec);
        }
    }
    let done = |collector: &Collector, applied: &[BTreeSet<u64>]| {
        collector.committed() >= spec.commands
            && applied.iter().all(|s| s.len() as u64 >= spec.commands)
    };
    while !done(&collector, &applied) {
        if cluster.elapsed() > deadline {
            let decided = collector.committed() as usize;
            cluster.shutdown();
            return Err(RuntimeError::Timeout {
                decided,
                n: spec.commands as usize,
            });
        }
        let Ok(commit) = cluster.commits().recv_timeout(POLL) else {
            continue;
        };
        applied[commit.pid.as_usize()].insert(kv_id(commit.value));
        let at_ns = commit.elapsed.as_nanos() as u64;
        if let Some(id) = collector.on_commit(commit.pid, commit.shard, commit.value, at_ns) {
            let client = owner[&id];
            submit_one(&cluster, &mut gen, &mut collector, &mut owner, client, spec);
        }
    }
    let stats = cluster.shutdown_stats();
    let router_epochs = fold_node_stats(&mut collector, &stats, shards);
    Ok(finish(collector, applied, router_epochs, stats, metrics_interval))
}

/// Assembles the outcome, attaching the nodes' typed traces (and the
/// summary's phase decomposition) when the cluster collected any, and —
/// when the cluster was metered — the per-node health series
/// interleaved in pid order (each node's snapshots stay internally
/// time-ordered; the `node` tag distinguishes the streams).
fn finish(
    collector: Collector,
    applied_per_node: Vec<BTreeSet<u64>>,
    router_epochs: Vec<u64>,
    stats: Vec<NodeStats>,
    metrics_interval: Option<Duration>,
) -> RtWorkloadOutcome {
    let trace_dropped: u64 = stats.iter().map(|s| s.trace_dropped).sum();
    let mut snapshots = Vec::new();
    let mut firings = Vec::new();
    let mut trace: Vec<esync_trace::TraceRecord> = Vec::new();
    for s in stats {
        snapshots.extend(s.snapshots);
        firings.extend(s.firings);
        trace.extend(s.trace);
    }
    let mut summary = collector.summary();
    if !trace.is_empty() {
        summary.phase_latency = Some(esync_trace::decompose(&trace));
    }
    if let Some(interval) = metrics_interval {
        summary.health = Some(esync_metrics::HealthSummary {
            interval_ns: interval.as_nanos() as u64,
            snapshots,
            firings,
            trace_dropped,
        });
    }
    RtWorkloadOutcome {
        summary,
        applied_per_node,
        router_epochs,
        trace,
    }
}

/// Runs an **open-loop** workload against a threaded cluster: the stream's
/// expansion (the same one the simulator schedules) is replayed on the
/// wall clock — command `i` is submitted once `stream.expand(n)[i].0` of
/// wall time has elapsed since the post-spawn submission start — then
/// commits are drained until every command is applied everywhere or
/// `deadline` passes.
///
/// # Errors
///
/// Returns [`RuntimeError::Config`] for invalid timing parameters and
/// [`RuntimeError::Timeout`] on deadline.
pub fn run_open_loop<P>(
    cfg: ClusterConfig,
    protocol: P,
    stream: &SubmitStream,
    deadline: Duration,
) -> Result<RtWorkloadOutcome, RuntimeError>
where
    P: Protocol,
    P::Process: Send + 'static,
    P::Msg: Send + Clone + 'static,
{
    let shards = protocol.shard_count();
    let metrics_interval = cfg.metrics_interval();
    let cluster = Cluster::spawn(cfg, protocol)?;
    let n = cluster.n();
    let schedule = stream.expand(n);
    let total = schedule.len() as u64;
    let mut collector = Collector::new(None, esync_core::time::RealDuration::from_millis(50));
    collector.reserve_shards(shards);
    let mut applied: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); n];
    let start = Instant::now();
    let drain = |collector: &mut Collector, applied: &mut Vec<BTreeSet<u64>>, wait: Duration| {
        if let Ok(commit) = cluster.commits().recv_timeout(wait) {
            applied[commit.pid.as_usize()].insert(kv_id(commit.value));
            collector.on_commit(
                commit.pid,
                commit.shard,
                commit.value,
                commit.elapsed.as_nanos() as u64,
            );
        }
    };
    for (at, pid, value) in &schedule {
        let due = start + Duration::from_nanos(at.as_nanos());
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            drain(&mut collector, &mut applied, (due - now).min(POLL));
        }
        collector.on_submit(*value, cluster.elapsed().as_nanos() as u64);
        cluster.submit(*pid, *value);
    }
    while collector.committed() < total || applied.iter().any(|s| (s.len() as u64) < total) {
        if cluster.elapsed() > deadline {
            let decided = collector.committed() as usize;
            cluster.shutdown();
            return Err(RuntimeError::Timeout {
                decided,
                n: total as usize,
            });
        }
        drain(&mut collector, &mut applied, POLL);
    }
    let stats = cluster.shutdown_stats();
    let router_epochs = fold_node_stats(&mut collector, &stats, shards);
    Ok(finish(collector, applied, router_epochs, stats, metrics_interval))
}

/// Issues the next command for `client`, if the budget allows.
fn submit_one<P>(
    cluster: &Cluster<P>,
    gen: &mut CommandGen,
    collector: &mut Collector,
    owner: &mut BTreeMap<u64, u32>,
    client: u32,
    spec: &ClosedLoopSpec,
) where
    P: Protocol,
    P::Process: Send + 'static,
    P::Msg: Send + Clone + 'static,
{
    if gen.issued() >= spec.commands {
        return;
    }
    let value = gen.next_command();
    owner.insert(kv_id(value), client);
    collector.on_submit(value, cluster.elapsed().as_nanos() as u64);
    cluster.submit(spec.target_of(client, cluster.n()), value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use esync_core::paxos::multi::MultiPaxos;

    #[test]
    fn closed_loop_over_threads_commits_everywhere() {
        let cfg = ClusterConfig::new(3)
            .delta(Duration::from_millis(5))
            .seed(21);
        let spec = ClosedLoopSpec::new(2, 2, 12).seed(3);
        let out = run_closed_loop(
            cfg,
            MultiPaxos::new().with_batching(4, 2),
            &spec,
            Duration::from_millis(300),
            Duration::from_secs(30),
        )
        .expect("workload completes");
        assert_eq!(out.summary.committed, 12);
        assert!(out.summary.latency.count == 12);
        for (i, ids) in out.applied_per_node.iter().enumerate() {
            assert_eq!(ids.len(), 12, "node {i} misses commands");
        }
    }
}
