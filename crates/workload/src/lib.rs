//! # esync-workload — replicated-log throughput workloads
//!
//! The paper's bound is about *decision latency after stabilization*; this
//! crate is the steady-state counterpart: sustained client traffic against
//! the multi-instance replicated log, measuring **commit throughput** and
//! **end-to-end latency percentiles** — before and after the stabilization
//! time — over both execution substrates:
//!
//! * the deterministic discrete-event simulator (`esync-sim`), where every
//!   run is a bit-reproducible function of its seeds, and
//! * the threaded real-time runtime (`esync-runtime`), driving the *same*
//!   state machines over real channels.
//!
//! Two client models, both deterministic and seedable:
//!
//! * **Open loop** ([`sim_driver::run_open_loop`],
//!   [`rt_driver::run_open_loop`]): commands arrive on a fixed-rate or
//!   Poisson schedule ([`esync_sim::scenario::SubmitStream`]) regardless
//!   of completion — the model for rate sweeps and overload studies. Both
//!   backends replay the **same** stream expansion, so they submit
//!   bit-identical command sequences.
//! * **Closed loop** ([`sim_driver::run_closed_loop`],
//!   [`rt_driver::run_closed_loop`]): each of `clients` keeps exactly
//!   `outstanding` commands in flight, submitting a replacement the moment
//!   one commits — the model for saturation throughput.
//!
//! Commands are keyed KV operations packed into the wire [`Value`] by
//! [`esync_core::types::kv_command`]: a unique id (at-least-once
//! deduplication) plus a sampled key. Keys are drawn from a pluggable
//! [`KeyDist`](gen::KeyDist) — uniform, Zipfian, a pinned hotspot, or a
//! *shifting* hotspot — so the skewed/adversarial distributions that
//! stress a range-partitioned router (and justify its live rebalancer)
//! are first-class, deterministic and seedable. The drivers are generic
//! over the log protocol — the plain [`MultiPaxos`] or the sharded
//! [`LogGroup`](esync_core::paxos::group::LogGroup), whose
//! [`ShardRouter`](esync_core::paxos::group::ShardRouter) partitions the
//! key space across `S` independent shards *inside* the process, so the
//! submitted command sequence is bit-identical across shard counts and
//! backends. Measurements land in
//! [`esync_sim::metrics::WorkloadSummary`]: commits/sec, p50/p99/p999
//! commit latency from a fixed-bucket HDR-style histogram, the pre- vs
//! post-stability split, a commits-per-window timeline, and — from the
//! shard-tagged commit feeds — the per-shard split
//! ([`esync_sim::metrics::ShardSummary`], artifact schema v3+).
//!
//! [`Value`]: esync_core::types::Value
//! [`MultiPaxos`]: esync_core::paxos::multi::MultiPaxos

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collect;
pub mod gen;
pub mod rt_driver;
pub mod sim_driver;

pub use collect::Collector;
pub use gen::{ClosedLoopSpec, CommandGen};
pub use sim_driver::SimWorkloadOutcome;
