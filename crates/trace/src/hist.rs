//! Fixed-bucket latency histograms (HDR style) and their artifact-facing
//! summaries. Home of the types previously defined in `esync-sim`'s
//! metrics module — hoisted here so the phase-decomposition instruments
//! can use them without a dependency cycle (`esync-sim` re-exports them,
//! so every pre-existing path still works).

use esync_core::time::RealDuration;
use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power-of-two magnitude: 2⁵ = 32, bounding the
/// relative quantization error at ~3%.
const HIST_SUB_BITS: u32 = 5;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;
/// Bucket count covering the full `u64` range: magnitudes `5..=63` each
/// contribute 32 buckets, plus the exact `0..32` range.
const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize) * HIST_SUB as usize + HIST_SUB as usize;

/// A fixed-bucket latency histogram in the HDR style: 32 linear
/// sub-buckets per power-of-two magnitude, so any `u64` nanosecond value
/// lands in one of `HIST_BUCKETS` buckets with ≤ ~3% relative error.
///
/// The record path is integer-only (a leading-zeros count and two shifts —
/// no float ops, no allocation), so it can sit on the simulator's and the
/// runtime's per-commit hot paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64; HIST_BUCKETS]>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The bucket index of `v`: exact below [`HIST_SUB`], then
/// `(magnitude, top-5-mantissa-bits)`.
#[inline]
fn hist_index(v: u64) -> usize {
    if v < HIST_SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let offset = ((msb - HIST_SUB_BITS + 1) as usize) << HIST_SUB_BITS;
        let sub = ((v >> (msb - HIST_SUB_BITS)) & (HIST_SUB - 1)) as usize;
        offset + sub
    }
}

/// The smallest value mapping to bucket `idx` (inverse of [`hist_index`]).
fn hist_lower_bound(idx: usize) -> u64 {
    if idx < HIST_SUB as usize {
        idx as u64
    } else {
        let octave = (idx >> HIST_SUB_BITS) - 1;
        let sub = (idx as u64) & (HIST_SUB - 1);
        (HIST_SUB + sub) << octave
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; HIST_BUCKETS]),
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one observation, in nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[hist_index(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records a [`RealDuration`] observation.
    #[inline]
    pub fn record_duration(&mut self, d: RealDuration) {
        self.record(d.as_nanos());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact smallest observation (`None` if empty).
    pub fn min_ns(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min_ns)
    }

    /// The exact largest observation (`None` if empty).
    pub fn max_ns(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max_ns)
    }

    /// The exact mean, in nanoseconds (`None` if empty).
    pub fn mean_ns(&self) -> Option<u64> {
        (self.total > 0).then(|| (self.sum_ns / u128::from(self.total)) as u64)
    }

    /// The `q`-quantile (nearest-rank over buckets), reported as the lower
    /// bound of the containing bucket — within ~3% of the exact value.
    /// `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q ≤ 1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(hist_lower_bound(idx).clamp(self.min_ns, self.max_ns));
            }
        }
        unreachable!("cumulative counts reach total")
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The non-empty buckets as `(lower_bound_ns, count)`, ascending — the
    /// compact dump embedded in benchmark artifacts.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (hist_lower_bound(i), c))
            .collect()
    }

    /// The serializable summary (quantiles plus the bucket dump).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.total,
            min_ns: self.min_ns().unwrap_or(0),
            mean_ns: self.mean_ns().unwrap_or(0),
            p50_ns: self.quantile(0.50).unwrap_or(0),
            p99_ns: self.quantile(0.99).unwrap_or(0),
            p999_ns: self.quantile(0.999).unwrap_or(0),
            max_ns: self.max_ns().unwrap_or(0),
            buckets: self.nonempty_buckets(),
        }
    }
}

/// The artifact-facing summary of a [`LatencyHistogram`]. Every field is a
/// deterministic function of the recorded values (integer nanoseconds, no
/// wall-clock contamination), so workload artifacts diff cleanly across
/// reruns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Exact minimum (ns); 0 if empty.
    pub min_ns: u64,
    /// Exact mean (ns); 0 if empty.
    pub mean_ns: u64,
    /// 50th percentile (bucket lower bound, ns).
    pub p50_ns: u64,
    /// 99th percentile (bucket lower bound, ns).
    pub p99_ns: u64,
    /// 99.9th percentile (bucket lower bound, ns).
    pub p999_ns: u64,
    /// Exact maximum (ns); 0 if empty.
    pub max_ns: u64,
    /// Non-empty `(lower_bound_ns, count)` buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_lower_bound_are_inverse_enough() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456_789, u64::MAX] {
            let idx = hist_index(v);
            let lb = hist_lower_bound(idx);
            assert!(lb <= v, "lower bound {lb} exceeds {v}");
            // Relative error bounded by one sub-bucket (~3%).
            if v >= HIST_SUB {
                assert!(v - lb <= v / HIST_SUB, "bucket too wide at {v}");
            } else {
                assert_eq!(lb, v, "exact region must be exact");
            }
        }
    }

    #[test]
    fn hist_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| {
                [0u64, 1, 3].map(|near| {
                    (1u64 << shift).saturating_add(near << shift.saturating_sub(4))
                })
            })
            .chain([0, 1, 31, 32, 33, u64::MAX])
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = hist_index(v);
            assert!(idx < HIST_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "v={v}: index went backwards");
            last = idx;
            // The inverse maps back to a bucket containing v.
            let lo = hist_lower_bound(idx);
            assert!(lo <= v, "lower bound {lo} > v={v}");
            assert!(idx + 1 == HIST_BUCKETS || hist_lower_bound(idx + 1) > v);
        }
        assert_eq!(hist_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn summary_of_empty_is_zeroed() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for v in [5u64, 40, 41, 1000, 1_000_000] {
            a.record(v);
            c.record(v);
        }
        for v in [7u64, 40, 2_000_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }
}
