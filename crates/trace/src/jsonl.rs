//! The `TRACE_*.jsonl` format: one JSON object per line, a `meta` header
//! line followed by flat record lines — and a hand-rolled parser for it
//! (the vendored offline `serde_json` serializes only).
//!
//! ## Schema
//!
//! The first line is the run header:
//!
//! ```json
//! {"meta":{"exp":"exp_e1","seed":42,"n":5,"delta_ns":10000000,
//!          "epsilon_ns":10000000,"ts_ns":300000000,"bound_ns":170000000,
//!          "dropped":0}}
//! ```
//!
//! `dropped` (v7) counts ring-evicted records; older files omit it and
//! parse as 0.
//!
//! Every following line is one [`TraceRecord`]: the stamp, the emitting
//! process, the event `kind` (the labels of
//! [`TraceEvent::kind`]), and the kind's payload fields, all
//! integer-valued:
//!
//! ```json
//! {"at_ns":312000000,"pid":2,"kind":"decided","shard":0,"slot":3,"value":7}
//! ```
//!
//! | kind | payload fields |
//! |---|---|
//! | `1a_sent`, `promise_quorum`, `anchored`, `unanchored` | `ballot` |
//! | `submit`, `forward` | `value` |
//! | `admitted`, `reply` | `shard`, `value` |
//! | `proposed`, `decided` | `shard`, `slot`, `value` |
//! | `chosen` | `shard`, `slot` |
//! | `rb_freeze`, `rb_drain`, `rb_commit`, `rb_abort` | `epoch` |
//! | `rb_reforward` | `epoch`, `count` |
//!
//! Writing is deterministic: fixed key order, no whitespace, `\n` line
//! ends — so same-seed simulator runs produce byte-identical files.

use crate::buffer::TraceRecord;
use esync_core::trace::TraceEvent;
use esync_core::types::ProcessId;
use std::fmt;
use std::fmt::Write as _;

/// The run header of a trace file: enough context to validate the
/// paper's decision bound without the artifact that produced the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// The experiment (or test) name the trace belongs to.
    pub exp: String,
    /// The run's seed.
    pub seed: u64,
    /// Number of processes.
    pub n: u32,
    /// The post-stabilization message-delay bound δ, in nanoseconds.
    pub delta_ns: u64,
    /// The retransmission period ε, in nanoseconds.
    pub epsilon_ns: u64,
    /// The stabilization time `TS` on the driver clock, in nanoseconds.
    pub ts_ns: u64,
    /// The per-decision bound after `TS`: `ε + 3τ + 5δ` (plus the ε
    /// alignment slack), in nanoseconds. A run satisfies the paper's
    /// guarantee iff every nonfaulty process's decision stamp is at most
    /// `ts_ns + bound_ns`. Zero means the bound does not apply to this
    /// trace (steady-state workload drives, where first decides are
    /// gated on client submission schedules, not on stabilization) and
    /// checkers must skip the per-decision validation.
    pub bound_ns: u64,
    /// Records evicted by the bounded ring(s) that collected this trace,
    /// summed across nodes. Nonzero means the file is a *suffix* of the
    /// run — phase decompositions and bound checks may be missing early
    /// decisions — so checkers warn. Old files omit the key; the parser
    /// reads it as 0.
    pub dropped: u64,
}

/// A parsed trace line: the header or a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// The `{"meta":…}` header line.
    Meta(TraceMeta),
    /// A stamped event record.
    Record(TraceRecord),
}

/// A trace line failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser was looking for.
    pub what: &'static str,
    /// Byte offset within the line.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace line: expected {} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for ParseError {}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders the header line (no trailing newline).
pub fn meta_line(meta: &TraceMeta) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"meta\":{\"exp\":\"");
    escape_into(&mut out, &meta.exp);
    let _ = write!(
        out,
        "\",\"seed\":{},\"n\":{},\"delta_ns\":{},\"epsilon_ns\":{},\"ts_ns\":{},\"bound_ns\":{},\"dropped\":{}}}}}",
        meta.seed, meta.n, meta.delta_ns, meta.epsilon_ns, meta.ts_ns, meta.bound_ns, meta.dropped
    );
    out
}

/// Renders one record line (no trailing newline). Key order is fixed:
/// `at_ns`, `pid`, `kind`, then the kind's payload fields in the order
/// of the schema table.
pub fn record_line(r: &TraceRecord) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"at_ns\":{},\"pid\":{},\"kind\":\"{}\"",
        r.at_ns,
        r.pid.as_u32(),
        r.ev.kind()
    );
    match r.ev {
        TraceEvent::OneASent { ballot }
        | TraceEvent::PromiseQuorum { ballot }
        | TraceEvent::Anchored { ballot }
        | TraceEvent::Unanchored { ballot } => {
            let _ = write!(out, ",\"ballot\":{ballot}");
        }
        TraceEvent::Submit { value } | TraceEvent::ForwardSent { value } => {
            let _ = write!(out, ",\"value\":{value}");
        }
        TraceEvent::Admitted { shard, value } | TraceEvent::ReplySent { shard, value } => {
            let _ = write!(out, ",\"shard\":{shard},\"value\":{value}");
        }
        TraceEvent::Proposed { shard, slot, value } | TraceEvent::Decided { shard, slot, value } => {
            let _ = write!(out, ",\"shard\":{shard},\"slot\":{slot},\"value\":{value}");
        }
        TraceEvent::Chosen { shard, slot } => {
            let _ = write!(out, ",\"shard\":{shard},\"slot\":{slot}");
        }
        TraceEvent::RebalanceFreeze { epoch }
        | TraceEvent::RebalanceDrain { epoch }
        | TraceEvent::RebalanceCommit { epoch }
        | TraceEvent::RebalanceAbort { epoch } => {
            let _ = write!(out, ",\"epoch\":{epoch}");
        }
        TraceEvent::RebalanceReforward { epoch, count } => {
            let _ = write!(out, ",\"epoch\":{epoch},\"count\":{count}");
        }
    }
    out.push('}');
    out
}

/// Renders a whole trace file: the header line, then every record in
/// order, `\n`-terminated.
pub fn write_jsonl<'a>(
    meta: &TraceMeta,
    records: impl IntoIterator<Item = &'a TraceRecord>,
) -> String {
    let mut out = meta_line(meta);
    out.push('\n');
    for r in records {
        out.push_str(&record_line(r));
        out.push('\n');
    }
    out
}

// ---- parsing (hand-rolled: the vendored serde_json cannot parse) ----

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Str(String),
    Obj(Vec<(String, Val)>),
}

struct Scanner<'a> {
    s: &'a [u8],
    at: usize,
}

impl<'a> Scanner<'a> {
    fn err<T>(&self, what: &'static str) -> Result<T, ParseError> {
        Err(ParseError { what, at: self.at })
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.at += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "string")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    _ => return self.err("escape"),
                },
                Some(b) => out.push(b as char),
                None => return self.err("closing quote"),
            }
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        let start = self.at;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == start {
            return self.err("number");
        }
        std::str::from_utf8(&self.s[start..self.at])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or(ParseError {
                what: "u64 in range",
                at: start,
            })
    }

    fn value(&mut self) -> Result<Val, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'{') => Ok(Val::Obj(self.object()?)),
            Some(b) if b.is_ascii_digit() => Ok(Val::Num(self.number()?)),
            _ => self.err("value"),
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Val)>, ParseError> {
        self.expect(b'{', "object")?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':', "colon")?;
            fields.push((key, self.value()?));
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(fields),
                _ => return self.err("comma or closing brace"),
            }
        }
    }
}

fn get<'v>(fields: &'v [(String, Val)], key: &'static str) -> Result<&'v Val, ParseError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or(ParseError { what: key, at: 0 })
}

fn get_u64(fields: &[(String, Val)], key: &'static str) -> Result<u64, ParseError> {
    match get(fields, key)? {
        Val::Num(n) => Ok(*n),
        _ => Err(ParseError { what: key, at: 0 }),
    }
}

fn get_str<'v>(fields: &'v [(String, Val)], key: &'static str) -> Result<&'v str, ParseError> {
    match get(fields, key)? {
        Val::Str(s) => Ok(s),
        _ => Err(ParseError { what: key, at: 0 }),
    }
}

fn get_u32(fields: &[(String, Val)], key: &'static str) -> Result<u32, ParseError> {
    u32::try_from(get_u64(fields, key)?).map_err(|_| ParseError { what: key, at: 0 })
}

fn event_of(fields: &[(String, Val)]) -> Result<TraceEvent, ParseError> {
    let kind = get_str(fields, "kind")?;
    Ok(match kind {
        "1a_sent" => TraceEvent::OneASent {
            ballot: get_u64(fields, "ballot")?,
        },
        "promise_quorum" => TraceEvent::PromiseQuorum {
            ballot: get_u64(fields, "ballot")?,
        },
        "anchored" => TraceEvent::Anchored {
            ballot: get_u64(fields, "ballot")?,
        },
        "unanchored" => TraceEvent::Unanchored {
            ballot: get_u64(fields, "ballot")?,
        },
        "submit" => TraceEvent::Submit {
            value: get_u64(fields, "value")?,
        },
        "forward" => TraceEvent::ForwardSent {
            value: get_u64(fields, "value")?,
        },
        "admitted" => TraceEvent::Admitted {
            shard: get_u32(fields, "shard")?,
            value: get_u64(fields, "value")?,
        },
        "proposed" => TraceEvent::Proposed {
            shard: get_u32(fields, "shard")?,
            slot: get_u64(fields, "slot")?,
            value: get_u64(fields, "value")?,
        },
        "chosen" => TraceEvent::Chosen {
            shard: get_u32(fields, "shard")?,
            slot: get_u64(fields, "slot")?,
        },
        "decided" => TraceEvent::Decided {
            shard: get_u32(fields, "shard")?,
            slot: get_u64(fields, "slot")?,
            value: get_u64(fields, "value")?,
        },
        "reply" => TraceEvent::ReplySent {
            shard: get_u32(fields, "shard")?,
            value: get_u64(fields, "value")?,
        },
        "rb_freeze" => TraceEvent::RebalanceFreeze {
            epoch: get_u64(fields, "epoch")?,
        },
        "rb_drain" => TraceEvent::RebalanceDrain {
            epoch: get_u64(fields, "epoch")?,
        },
        "rb_commit" => TraceEvent::RebalanceCommit {
            epoch: get_u64(fields, "epoch")?,
        },
        "rb_reforward" => TraceEvent::RebalanceReforward {
            epoch: get_u64(fields, "epoch")?,
            count: get_u64(fields, "count")?,
        },
        "rb_abort" => TraceEvent::RebalanceAbort {
            epoch: get_u64(fields, "epoch")?,
        },
        _ => return Err(ParseError { what: "known kind", at: 0 }),
    })
}

/// Parses one line of a trace file.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed JSON, unknown kinds, or missing
/// payload fields.
pub fn parse_line(line: &str) -> Result<Line, ParseError> {
    let mut sc = Scanner {
        s: line.trim_end().as_bytes(),
        at: 0,
    };
    let fields = sc.object()?;
    if sc.at != sc.s.len() {
        return sc.err("end of line");
    }
    if let Ok(Val::Obj(meta)) = get(&fields, "meta").cloned() {
        return Ok(Line::Meta(TraceMeta {
            exp: get_str(&meta, "exp")?.to_string(),
            seed: get_u64(&meta, "seed")?,
            n: get_u32(&meta, "n")?,
            delta_ns: get_u64(&meta, "delta_ns")?,
            epsilon_ns: get_u64(&meta, "epsilon_ns")?,
            ts_ns: get_u64(&meta, "ts_ns")?,
            bound_ns: get_u64(&meta, "bound_ns")?,
            // Pre-v7 files have no dropped count; absent means none.
            dropped: get_u64(&meta, "dropped").unwrap_or(0),
        }));
    }
    Ok(Line::Record(TraceRecord {
        at_ns: get_u64(&fields, "at_ns")?,
        pid: ProcessId::new(get_u32(&fields, "pid")?),
        ev: event_of(&fields)?,
    }))
}

/// Parses a whole trace file: the header (if present) plus every record,
/// in order. Blank lines are skipped.
///
/// # Errors
///
/// Returns the first line's [`ParseError`], if any.
pub fn parse_jsonl(text: &str) -> Result<(Option<TraceMeta>, Vec<TraceRecord>), ParseError> {
    let mut meta = None;
    let mut records = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line)? {
            Line::Meta(m) => meta = Some(m),
            Line::Record(r) => records.push(r),
        }
    }
    Ok((meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> TraceMeta {
        TraceMeta {
            exp: "exp_e1".to_string(),
            seed: 42,
            n: 5,
            delta_ns: 10_000_000,
            epsilon_ns: 10_000_000,
            ts_ns: 300_000_000,
            bound_ns: 170_000_000,
            dropped: 0,
        }
    }

    #[test]
    fn every_kind_roundtrips_through_jsonl() {
        let events = [
            TraceEvent::OneASent { ballot: 9 },
            TraceEvent::PromiseQuorum { ballot: 9 },
            TraceEvent::Anchored { ballot: 9 },
            TraceEvent::Unanchored { ballot: 4 },
            TraceEvent::Submit { value: 7 },
            TraceEvent::ForwardSent { value: 7 },
            TraceEvent::Admitted { shard: 1, value: 7 },
            TraceEvent::Proposed { shard: 1, slot: 3, value: 7 },
            TraceEvent::Chosen { shard: 1, slot: 3 },
            TraceEvent::Decided { shard: 1, slot: 3, value: 7 },
            TraceEvent::ReplySent { shard: 1, value: 7 },
            TraceEvent::RebalanceFreeze { epoch: 1 },
            TraceEvent::RebalanceDrain { epoch: 1 },
            TraceEvent::RebalanceCommit { epoch: 1 },
            TraceEvent::RebalanceReforward { epoch: 1, count: 12 },
            TraceEvent::RebalanceAbort { epoch: 2 },
        ];
        let records: Vec<TraceRecord> = events
            .iter()
            .enumerate()
            .map(|(i, ev)| TraceRecord {
                at_ns: 1_000 * i as u64,
                pid: ProcessId::new(i as u32 % 3),
                ev: *ev,
            })
            .collect();
        let meta = sample_meta();
        let text = write_jsonl(&meta, &records);
        let (parsed_meta, parsed) = parse_jsonl(&text).expect("roundtrip parses");
        assert_eq!(parsed_meta, Some(meta));
        assert_eq!(parsed, records);
    }

    #[test]
    fn writer_is_deterministic() {
        let r = TraceRecord {
            at_ns: 5,
            pid: ProcessId::new(2),
            ev: TraceEvent::Chosen { shard: 0, slot: 9 },
        };
        assert_eq!(
            record_line(&r),
            "{\"at_ns\":5,\"pid\":2,\"kind\":\"chosen\",\"shard\":0,\"slot\":9}"
        );
        assert_eq!(write_jsonl(&sample_meta(), [&r]), write_jsonl(&sample_meta(), [&r]));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{\"at_ns\":1}").is_err(), "missing pid/kind");
        assert!(
            parse_line("{\"at_ns\":1,\"pid\":0,\"kind\":\"nope\"}").is_err(),
            "unknown kind"
        );
        assert!(
            parse_line("{\"at_ns\":1,\"pid\":0,\"kind\":\"submit\"}").is_err(),
            "missing payload"
        );
        assert!(parse_line("{\"at_ns\":1,\"pid\":0} trailing").is_err());
        assert!(
            parse_line("{\"at_ns\":99999999999999999999999,\"pid\":0,\"kind\":\"chosen\",\"shard\":0,\"slot\":1}")
                .is_err(),
            "overflowing number"
        );
    }

    #[test]
    fn exp_names_are_escaped() {
        let mut meta = sample_meta();
        meta.exp = "odd \"name\"\\with\nnoise".to_string();
        let line = meta_line(&meta);
        match parse_line(&line).expect("escaped header parses") {
            Line::Meta(m) => assert_eq!(m, meta),
            other => panic!("expected meta, got {other:?}"),
        }
    }
}
