//! # esync-trace — deterministic tracing, collection and analysis
//!
//! The observability layer over the sans-IO seam: protocol state
//! machines emit typed [`TraceEvent`](esync_core::trace::TraceEvent)s
//! into their `Outbox` (a side channel that never feeds back into
//! behaviour), drivers stamp them with driver time into a bounded
//! [`TraceBuffer`], and this crate turns the result into:
//!
//! * **`TRACE_*.jsonl` files** — a documented, deterministic JSONL
//!   format ([`jsonl`]) with a hand-rolled parser (the vendored offline
//!   `serde_json` serializes only);
//! * **per-decision bound replays** — [`check_decision_bound`] validates
//!   the paper's post-`TS` decision bound for *every* process's first
//!   decision, not just the run-level maximum;
//! * **phase decompositions** — [`decompose`] splits each command's
//!   submit → decide journey into queue / quorum / learn phases
//!   ([`PhaseLatency`], embedded in workload artifacts as schema v6's
//!   `phase_latency`).
//!
//! The latency histogram machinery ([`LatencyHistogram`],
//! [`HistogramSummary`]) lives here too — `esync-sim` re-exports it, so
//! the simulator, runtime and workload crates keep their existing paths.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod analyze;
mod buffer;
mod hist;
pub mod jsonl;

pub use analyze::{
    check_decision_bound, command_phases, decompose, BoundReport, BoundViolation, CommandPhases,
    PhaseLatency,
};
pub use buffer::{TraceBuffer, TraceRecord};
pub use hist::{HistogramSummary, LatencyHistogram};
pub use jsonl::{parse_jsonl, write_jsonl, Line, ParseError, TraceMeta};
