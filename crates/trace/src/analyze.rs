//! Trace analysis: the per-command phase decomposition (queue → quorum →
//! learn) and the per-decision replay of the paper's post-`TS` bound.

use crate::buffer::TraceRecord;
use crate::hist::{HistogramSummary, LatencyHistogram};
use esync_core::trace::TraceEvent;
use esync_core::types::ProcessId;
use crate::jsonl::TraceMeta;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The latency decomposition of one run's command journeys, embedded in
/// `WorkloadSummary` artifacts as `phase_latency` (schema v6; `null`
/// when tracing was off):
///
/// * **queue** — submission to the first phase-2a carrying the command
///   (admission, forwarding, batching and any rebalance freeze);
/// * **quorum** — first 2a to the leader observing the 2b quorum
///   (`chosen`); the paper's two-message-delay phase;
/// * **learn** — chosen to the first process applying the command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseLatency {
    /// Commands with a complete decomposition (submitted, proposed and
    /// decided inside the trace window).
    pub decisions: u64,
    /// Submission → first 2a, per command.
    pub queue: HistogramSummary,
    /// First 2a → 2b quorum, per command.
    pub quorum: HistogramSummary,
    /// 2b quorum → first apply, per command.
    pub learn: HistogramSummary,
}

/// The journey milestones of one command, assembled from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandPhases {
    /// The command.
    pub value: u64,
    /// First `submit` stamp.
    pub submit_ns: u64,
    /// First `proposed` stamp, if the command reached a 2a.
    pub proposed_ns: Option<u64>,
    /// First `chosen` stamp of the slot the command was proposed into,
    /// if any (single-shot traces have no `chosen` events).
    pub chosen_ns: Option<u64>,
    /// First `decided` stamp anywhere, if the command committed.
    pub decided_ns: Option<u64>,
}

/// Assembles per-command journeys from `records`, ordered by submit
/// stamp. Records need not be time-sorted (the threaded runtime
/// concatenates per-node buffers); every "first" below is the minimum
/// stamp observed.
pub fn command_phases(records: &[TraceRecord]) -> Vec<CommandPhases> {
    let mut submit: BTreeMap<u64, u64> = BTreeMap::new();
    let mut proposed: BTreeMap<u64, (u64, u32, u64)> = BTreeMap::new();
    let mut chosen: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    let mut decided: BTreeMap<u64, u64> = BTreeMap::new();
    fn keep_min(slot: &mut u64, at: u64) {
        if at < *slot {
            *slot = at;
        }
    }
    for r in records {
        match r.ev {
            TraceEvent::Submit { value } => {
                keep_min(submit.entry(value).or_insert(u64::MAX), r.at_ns);
            }
            TraceEvent::Proposed { shard, slot, value } => {
                let e = proposed.entry(value).or_insert((u64::MAX, shard, slot));
                if r.at_ns < e.0 {
                    *e = (r.at_ns, shard, slot);
                }
            }
            TraceEvent::Chosen { shard, slot } => {
                keep_min(chosen.entry((shard, slot)).or_insert(u64::MAX), r.at_ns);
            }
            TraceEvent::Decided { value, .. } => {
                keep_min(decided.entry(value).or_insert(u64::MAX), r.at_ns);
            }
            _ => {}
        }
    }
    let mut out: Vec<CommandPhases> = submit
        .iter()
        .map(|(value, submit_ns)| {
            let p = proposed.get(value).copied();
            CommandPhases {
                value: *value,
                submit_ns: *submit_ns,
                proposed_ns: p.map(|(at, _, _)| at),
                chosen_ns: p.and_then(|(_, sh, sl)| chosen.get(&(sh, sl)).copied()),
                decided_ns: decided.get(value).copied(),
            }
        })
        .collect();
    out.sort_by_key(|c| (c.submit_ns, c.value));
    out
}

/// Computes the run-level [`PhaseLatency`] over every command with a
/// complete journey. Traces without `chosen` events (single-shot
/// protocols) fold the quorum and learn phases together: `quorum` then
/// spans 2a → first apply and `learn` is zero.
pub fn decompose(records: &[TraceRecord]) -> PhaseLatency {
    let mut queue = LatencyHistogram::new();
    let mut quorum = LatencyHistogram::new();
    let mut learn = LatencyHistogram::new();
    let mut decisions = 0u64;
    for c in command_phases(records) {
        let (Some(p), Some(d)) = (c.proposed_ns, c.decided_ns) else {
            continue;
        };
        decisions += 1;
        queue.record(p.saturating_sub(c.submit_ns));
        match c.chosen_ns.filter(|ch| *ch >= p) {
            Some(ch) => {
                quorum.record(ch.saturating_sub(p));
                learn.record(d.saturating_sub(ch));
            }
            None => {
                quorum.record(d.saturating_sub(p));
                learn.record(0);
            }
        }
    }
    PhaseLatency {
        decisions,
        queue: queue.summary(),
        quorum: quorum.summary(),
        learn: learn.summary(),
    }
}

/// One process's decision landing after the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundViolation {
    /// The process that decided late.
    pub pid: ProcessId,
    /// Its first decision stamp.
    pub at_ns: u64,
    /// The deadline it missed (`ts_ns + bound_ns`).
    pub deadline_ns: u64,
}

/// The outcome of replaying a trace against the paper's per-decision
/// bound (see [`check_decision_bound`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundReport {
    /// `ts_ns + bound_ns` from the trace header.
    pub deadline_ns: u64,
    /// Per-process first-decision stamps, ascending by process id.
    pub first_decisions: Vec<(ProcessId, u64)>,
    /// The decisions that missed the deadline (empty = bound holds).
    pub violations: Vec<BoundViolation>,
}

impl BoundReport {
    /// Whether every observed decision met the deadline.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays `records` against `meta`'s deadline: every process's **first**
/// `decided` stamp must land at or before `ts_ns + bound_ns`. This is the
/// per-decision (per-process) form of the paper's Theorem-4.1-style
/// guarantee — strictly stronger than the run-level "max decision delay"
/// the experiment artifacts already assert, because one late process
/// cannot hide behind an early quorum. Processes that never decide inside
/// the trace window are not violations (the checker's caller knows the
/// crash schedule and can require a decision count separately).
pub fn check_decision_bound(meta: &TraceMeta, records: &[TraceRecord]) -> BoundReport {
    let deadline_ns = meta.ts_ns.saturating_add(meta.bound_ns);
    let mut first: BTreeMap<u32, u64> = BTreeMap::new();
    for r in records {
        if let TraceEvent::Decided { .. } = r.ev {
            let e = first.entry(r.pid.as_u32()).or_insert(u64::MAX);
            if r.at_ns < *e {
                *e = r.at_ns;
            }
        }
    }
    let first_decisions: Vec<(ProcessId, u64)> = first
        .iter()
        .map(|(pid, at)| (ProcessId::new(*pid), *at))
        .collect();
    let violations = first_decisions
        .iter()
        .filter(|(_, at)| *at > deadline_ns)
        .map(|(pid, at)| BoundViolation {
            pid: *pid,
            at_ns: *at,
            deadline_ns,
        })
        .collect();
    BoundReport {
        deadline_ns,
        first_decisions,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, pid: u32, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            at_ns,
            pid: ProcessId::new(pid),
            ev,
        }
    }

    #[test]
    fn decomposition_splits_the_journey() {
        let records = vec![
            rec(100, 1, TraceEvent::Submit { value: 7 }),
            rec(120, 1, TraceEvent::ForwardSent { value: 7 }),
            rec(150, 0, TraceEvent::Admitted { shard: 0, value: 7 }),
            rec(
                200,
                0,
                TraceEvent::Proposed {
                    shard: 0,
                    slot: 3,
                    value: 7,
                },
            ),
            rec(260, 0, TraceEvent::Chosen { shard: 0, slot: 3 }),
            rec(
                300,
                2,
                TraceEvent::Decided {
                    shard: 0,
                    slot: 3,
                    value: 7,
                },
            ),
        ];
        let phases = command_phases(&records);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].submit_ns, 100);
        assert_eq!(phases[0].proposed_ns, Some(200));
        assert_eq!(phases[0].chosen_ns, Some(260));
        assert_eq!(phases[0].decided_ns, Some(300));
        let pl = decompose(&records);
        assert_eq!(pl.decisions, 1);
        assert_eq!(pl.queue.max_ns, 100);
        assert_eq!(pl.quorum.max_ns, 60);
        assert_eq!(pl.learn.max_ns, 40);
    }

    #[test]
    fn single_shot_traces_fold_learn_into_quorum() {
        let records = vec![
            rec(10, 0, TraceEvent::Submit { value: 5 }),
            rec(
                30,
                0,
                TraceEvent::Proposed {
                    shard: 0,
                    slot: 0,
                    value: 5,
                },
            ),
            rec(
                90,
                0,
                TraceEvent::Decided {
                    shard: 0,
                    slot: 0,
                    value: 5,
                },
            ),
        ];
        let pl = decompose(&records);
        assert_eq!(pl.decisions, 1);
        assert_eq!(pl.queue.max_ns, 20);
        assert_eq!(pl.quorum.max_ns, 60);
        assert_eq!(pl.learn.max_ns, 0);
    }

    #[test]
    fn bound_check_flags_only_late_deciders() {
        let meta = TraceMeta {
            exp: "t".into(),
            seed: 0,
            n: 3,
            delta_ns: 10,
            epsilon_ns: 10,
            ts_ns: 1_000,
            bound_ns: 500,
            dropped: 0,
        };
        let d = |at, pid| {
            rec(
                at,
                pid,
                TraceEvent::Decided {
                    shard: 0,
                    slot: 0,
                    value: 1,
                },
            )
        };
        // pid 0 decides pre-TS, pid 1 inside the bound, pid 2 late —
        // and a later duplicate decide of pid 1 must not count.
        let records = vec![d(900, 0), d(1_400, 1), d(9_999, 1), d(1_501, 2)];
        let report = check_decision_bound(&meta, &records);
        assert_eq!(report.deadline_ns, 1_500);
        assert_eq!(report.first_decisions.len(), 3);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].pid, ProcessId::new(2));
        assert!(!report.holds());
    }
}
