//! Time-stamped trace records and the bounded ring collector drivers
//! drain protocol [`TraceEvent`]s into.

use esync_core::trace::TraceEvent;
use esync_core::types::ProcessId;
use std::collections::{BTreeMap, VecDeque};

/// One stamped trace event: what happened ([`TraceEvent`]), where (the
/// process the driver was running), and when (driver time — simulated
/// nanoseconds in the simulator, monotonic nanoseconds since cluster
/// start in the threaded runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The stamp, in nanoseconds on the driver's clock.
    pub at_ns: u64,
    /// The process that emitted the event.
    pub pid: ProcessId,
    /// The event itself.
    pub ev: TraceEvent,
}

/// A bounded ring buffer of [`TraceRecord`]s: pushes beyond the capacity
/// evict the **oldest** record (most-recent-wins, the useful tail for a
/// post-mortem) and count as dropped. Per-kind counts are kept for every
/// push, evicted or not, so aggregate statistics survive the ring.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    cap: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
    by_kind: BTreeMap<&'static str, u64>,
}

impl TraceBuffer {
    /// Creates a collector holding at most `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a trace buffer needs room for at least one record");
        TraceBuffer {
            cap,
            records: VecDeque::with_capacity(cap.min(1 << 16)),
            dropped: 0,
            by_kind: BTreeMap::new(),
        }
    }

    /// The capacity the buffer was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, record: TraceRecord) {
        *self.by_kind.entry(record.ev.kind()).or_insert(0) += 1;
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted by the ring since creation (or the last
    /// [`TraceBuffer::clear`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pushes per event kind, including evicted records.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.by_kind
    }

    /// Takes the held records (oldest first), leaving the buffer empty
    /// but keeping the per-kind counts and dropped tally.
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        self.records.drain(..).collect()
    }

    /// Empties the buffer and resets every counter.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
        self.by_kind.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64) -> TraceRecord {
        TraceRecord {
            at_ns,
            pid: ProcessId::new(0),
            ev: TraceEvent::Submit { value: at_ns },
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_drops() {
        let mut b = TraceBuffer::new(3);
        for i in 0..5 {
            b.push(rec(i));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 2);
        let kept: Vec<u64> = b.records().map(|r| r.at_ns).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted first");
        assert_eq!(b.counts().get("submit"), Some(&5), "counts see every push");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
        assert!(b.counts().is_empty());
    }
}
