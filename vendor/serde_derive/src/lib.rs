//! Vendored minimal `serde_derive`: hand-parsed `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the offline build of this repository.
//!
//! Supports the subset of shapes this workspace actually uses:
//!
//! * named-field structs            → JSON objects
//! * tuple structs (1 field)        → the inner value (newtype transparency)
//! * tuple structs (n > 1 fields)   → JSON arrays
//! * unit structs                   → `null`
//! * enums with unit / tuple / named-field variants → externally tagged,
//!   matching upstream serde's default representation
//!
//! Generics are intentionally unsupported (no workspace type needs them);
//! deriving on a generic type is a compile error with a clear message.
//! The `#[serde(...)]` helper attribute is registered, but only
//! `#[serde(default)]` is accepted (upstream applies it on
//! deserialization only, absent here); any other serde attribute is a
//! compile error, since silently ignoring it would change the
//! serialized shape relative to upstream serde.
//! `Deserialize` is a marker impl only — nothing in the workspace parses
//! JSON back into Rust values.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Rejects `#[serde(...)]` helper attributes this vendored shim does not
/// actually implement. The only supported one is `#[serde(default)]`,
/// which upstream serde applies on deserialization only — a no-op here,
/// where `Deserialize` is a marker. Anything else (`rename`, `skip`,
/// `flatten`, ...) would silently change upstream's serialized shape
/// while this shim ignored it, so it fails the build loudly instead
/// (matching the shim's fail-loud stance on generics).
fn check_serde_attr(group: &proc_macro::Group) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // not a serde helper attribute: none of our business
    }
    let supported = match tokens.get(1) {
        Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(args.as_slice(),
                [TokenTree::Ident(id)] if id.to_string() == "default")
        }
        _ => false,
    };
    assert!(
        supported,
        "vendored serde_derive supports only #[serde(default)] \
         (a deserialization-side no-op); found `#[{group}]`, which the \
         offline Serialize impl would silently ignore"
    );
}

/// Skips attributes (`#[...]` / `#![...]`) and visibility (`pub`,
/// `pub(crate)`, ...) at the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                // Optional `!` for inner attributes.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '!' {
                        i += 1;
                    }
                }
                // The `[...]` group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    check_serde_attr(g);
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Counts non-empty top-level comma-separated segments of a group stream.
/// Angle brackets are not token groups, so commas inside generic arguments
/// (`BTreeMap<K, V>`) must be skipped by tracking `<`/`>` depth.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut last_was_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                last_was_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => last_was_comma = false,
        }
    }
    if last_was_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Extracts field names from a named-field brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        names.push(name.to_string());
        i += 1;
        // Expect `:` then skip the type up to the next comma at angle
        // depth 0 (commas inside `BTreeMap<K, V>` are part of the type).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    i += 1;
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    i += 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    names
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive (vendored): expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive (vendored): generic type `{name}` is not supported; \
                 write a manual impl instead"
            );
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive (vendored): malformed enum body: {other:?}"),
            };
            Input::Enum { name, variants }
        }
        other => panic!("serde_derive (vendored): cannot derive for `{other}`"),
    }
}

fn gen_named_body(fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    let mut body = String::from("__s.begin_map();");
    for f in fields {
        body.push_str(&format!(
            "__s.key(\"{f}\"); serde::Serialize::serialize({}, __s);",
            accessor(f)
        ));
    }
    body.push_str("__s.end_map();");
    body
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let (name, body) = match &parsed {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "__s.value_null();".to_string(),
                Fields::Tuple(1) => "serde::Serialize::serialize(&self.0, __s);".to_string(),
                Fields::Tuple(k) => {
                    let mut b = String::from("__s.begin_seq();");
                    for idx in 0..*k {
                        b.push_str(&format!(
                            "__s.seq_elem(); serde::Serialize::serialize(&self.{idx}, __s);"
                        ));
                    }
                    b.push_str("__s.end_seq();");
                    b
                }
                Fields::Named(fs) => gen_named_body(fs, |f| format!("&self.{f}")),
            };
            (name.clone(), body)
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => {{ __s.value_str(\"{vn}\"); }}\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => {{ __s.begin_map(); __s.key(\"{vn}\"); \
                             serde::Serialize::serialize(__f0, __s); __s.end_map(); }}\n"
                        ));
                    }
                    Fields::Tuple(k) => {
                        let binders: Vec<String> = (0..*k).map(|i| format!("__f{i}")).collect();
                        let mut inner = String::from("__s.begin_seq();");
                        for b in &binders {
                            inner.push_str(&format!(
                                "__s.seq_elem(); serde::Serialize::serialize({b}, __s);"
                            ));
                        }
                        inner.push_str("__s.end_seq();");
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ __s.begin_map(); __s.key(\"{vn}\"); \
                             {inner} __s.end_map(); }}\n",
                            binders.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inner = gen_named_body(fs, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ __s.begin_map(); __s.key(\"{vn}\"); \
                             {inner} __s.end_map(); }}\n",
                            fs.join(", ")
                        ));
                    }
                }
            }
            (name.clone(), format!("match self {{ {arms} }}"))
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize(&self, __s: &mut serde::Serializer) {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = match &parsed {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name.clone(),
    };
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
