//! Vendored minimal `rand`: the trait surface this workspace uses
//! (`RngCore`, `Rng::{gen_bool, gen_range}`, `SeedableRng`), implemented
//! offline. Numeric streams are deterministic given an RNG but do **not**
//! match upstream `rand` bit-for-bit — every consumer in this workspace
//! only relies on internal determinism.

use std::ops::{Range, RangeInclusive};

/// The raw 32/64-bit generator interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The raw seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, then constructs.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire's multiply-shift; span == 0 means the full 2^64 range.
    if span == 0 {
        return rng.next_u64();
    }
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    // Full 64-bit range: span + 1 would overflow.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
int_ranges!(u16, u32, u64, usize);

macro_rules! signed_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span.wrapping_add(1)) as i128) as $t
            }
        }
    )*};
}
signed_ranges!(i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        unit_f64(self) < p
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let v = r.gen_range(0usize..5);
            assert!(v < 5);
            let f = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Lcg(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..2000).filter(|_| r.gen_bool(0.3)).count();
        assert!((400..800).contains(&hits), "got {hits}");
    }
}
