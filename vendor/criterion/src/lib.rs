//! Vendored minimal `criterion`: a wall-clock micro-benchmark harness with
//! the upstream API shape (`criterion_group!` / `criterion_main!`,
//! `bench_function`, `benchmark_group` + `bench_with_input`). Each
//! benchmark is warmed up, then timed over `sample_size` samples; the
//! median/mean/min/max per-iteration nanoseconds are printed and, when the
//! `CRITERION_OUT` environment variable is set, appended as a JSON array
//! to that path so scripts can capture a machine-readable trajectory.

use serde::Serialize;
use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Benchmark id (`group/param` or the bare function name).
    pub id: String,
    /// Samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// Mean ns/iter across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns/iter.
    pub min_ns: f64,
    /// Slowest sample's ns/iter.
    pub max_ns: f64,
}

static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (min 5).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against one input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let n = self.criterion.sample_size;
        run_one(&full, n, |b| f(b, input));
        self
    }

    /// Finishes the group (upstream-API compatibility; no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter value (e.g. an input size).
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] exactly once.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes ≥ ~20ms (or we hit a generous cap for very slow benches).
    let mut iters: u64 = 1;
    loop {
        let d = time_batch(&mut f, iters);
        if d >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        // Grow toward the target with a safety factor of 2.
        let target = Duration::from_millis(25).as_nanos() as u64;
        let got = d.as_nanos().max(1) as u64;
        iters = (iters * (target / got).clamp(2, 64)).min(1 << 20);
    }
    // Warmup once more at the chosen count, then sample.
    time_batch(&mut f, iters);
    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| time_batch(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if per_iter.len() % 2 == 1 {
        per_iter[per_iter.len() / 2]
    } else {
        (per_iter[per_iter.len() / 2 - 1] + per_iter[per_iter.len() / 2]) / 2.0
    };
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let m = Measurement {
        id: id.to_string(),
        samples: per_iter.len(),
        iters_per_sample: iters,
        median_ns: median,
        mean_ns: mean,
        min_ns: per_iter[0],
        max_ns: *per_iter.last().unwrap(),
    };
    println!(
        "{:<44} time: [{} .. {} .. {}]  ({} samples × {} iters)",
        m.id,
        fmt_ns(m.min_ns),
        fmt_ns(m.median_ns),
        fmt_ns(m.max_ns),
        m.samples,
        m.iters_per_sample,
    );
    RESULTS.lock().unwrap().push(m);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Writes all recorded measurements as a JSON array to `$CRITERION_OUT`
/// (if set). Called by the `criterion_main!` expansion after every group
/// has run.
pub fn write_results() {
    let results = RESULTS.lock().unwrap();
    if let Ok(path) = std::env::var("CRITERION_OUT") {
        let json = serde_json::to_string_pretty(&*results).expect("measurements serialize");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion (vendored): cannot write {path}: {e}");
        } else {
            println!("criterion (vendored): wrote {} results to {path}", results.len());
        }
    }
}

/// Declares a benchmark group function (upstream-compatible forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running every group then
/// flushing JSON results.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results();
        }
    };
}
