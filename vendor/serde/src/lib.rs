//! Vendored minimal `serde`: just enough of the upstream surface for this
//! workspace to build and serialize its artifacts **offline** (the build
//! environment has no crates.io access).
//!
//! The data model is JSON-only: [`Serialize`] writes straight into a
//! [`Serializer`] that renders JSON text (compact or pretty). The derive
//! macros live in the sibling `serde_derive` crate and emit the upstream
//! default representations (objects for named structs, newtype
//! transparency, externally-tagged enums). [`Deserialize`] is a marker
//! trait — nothing in the workspace parses JSON back.

use std::collections::{BTreeMap, BTreeSet};

pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as JSON through a [`Serializer`].
pub trait Serialize {
    /// Writes `self` into the serializer.
    fn serialize(&self, s: &mut Serializer);
}

/// Marker for types whose derive requested `Deserialize`.
///
/// Deserialization is not implemented in the vendored shim; the derive
/// emits an empty impl so `#[derive(Deserialize)]` stays source-compatible.
pub trait Deserialize {}

/// A JSON text writer with optional pretty-printing.
#[derive(Debug)]
pub struct Serializer {
    out: String,
    /// Per-open-container "is the next element the first one?" flags.
    firsts: Vec<bool>,
    pretty: bool,
}

impl Serializer {
    /// A compact (single-line) serializer.
    pub fn new() -> Self {
        Serializer {
            out: String::new(),
            firsts: Vec::new(),
            pretty: false,
        }
    }

    /// A pretty-printing (2-space indented) serializer.
    pub fn pretty() -> Self {
        Serializer {
            pretty: true,
            ..Serializer::new()
        }
    }

    /// Consumes the serializer, returning the rendered JSON.
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.firsts.len() {
            self.out.push_str("  ");
        }
    }

    fn elem_separator(&mut self) {
        match self.firsts.last_mut() {
            Some(first) if *first => *first = false,
            Some(_) => self.out.push(','),
            None => {}
        }
        if self.pretty && !self.firsts.is_empty() {
            self.newline_indent();
        }
    }

    /// Opens a JSON object.
    pub fn begin_map(&mut self) {
        self.out.push('{');
        self.firsts.push(true);
    }

    /// Writes an object key (with its separating comma if needed).
    pub fn key(&mut self, k: &str) {
        self.elem_separator();
        write_json_string(&mut self.out, k);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Closes the innermost JSON object.
    pub fn end_map(&mut self) {
        let was_empty = self.firsts.pop().unwrap_or(true);
        if self.pretty && !was_empty {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_seq(&mut self) {
        self.out.push('[');
        self.firsts.push(true);
    }

    /// Starts the next array element (with its separating comma if needed).
    pub fn seq_elem(&mut self) {
        self.elem_separator();
    }

    /// Closes the innermost JSON array.
    pub fn end_seq(&mut self) {
        let was_empty = self.firsts.pop().unwrap_or(true);
        if self.pretty && !was_empty {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes `null`.
    pub fn value_null(&mut self) {
        self.out.push_str("null");
    }

    /// Writes a boolean literal.
    pub fn value_bool(&mut self, b: bool) {
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Writes an unsigned integer.
    pub fn value_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer.
    pub fn value_i64(&mut self, v: i64) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a float; non-finite values become `null` (as in serde_json).
    pub fn value_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Make sure the output re-parses as a float, not an int.
            let s = v.to_string();
            self.out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.value_null();
        }
    }

    /// Writes an escaped JSON string.
    pub fn value_str(&mut self, v: &str) {
        write_json_string(&mut self.out, v);
    }
}

impl Default for Serializer {
    fn default() -> Self {
        Serializer::new()
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.value_u64(*self as u64);
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.value_i64(*self as i64);
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        s.value_f64(*self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        s.value_f64(f64::from(*self));
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.value_bool(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.value_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.value_str(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.value_null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_seq();
        for v in self {
            s.seq_elem();
            v.serialize(s);
        }
        s.end_seq();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_seq();
        for v in self {
            s.seq_elem();
            v.serialize(s);
        }
        s.end_seq();
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_map();
        for (k, v) in self {
            // JSON keys must be strings: render the key and quote it if it
            // did not already render as a string (serde_json does the same
            // for integer keys).
            let mut ks = Serializer::new();
            k.serialize(&mut ks);
            let rendered = ks.finish();
            if rendered.starts_with('"') {
                // Already a JSON string: splice it in verbatim.
                s.elem_separator();
                s.out.push_str(&rendered);
                s.out.push(':');
                if s.pretty {
                    s.out.push(' ');
                }
            } else {
                s.key(&rendered);
            }
            v.serialize(s);
        }
        s.end_map();
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, s: &mut Serializer) {
                s.begin_seq();
                $( s.seq_elem(); self.$idx.serialize(s); )+
                s.end_seq();
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render<T: Serialize>(v: &T) -> String {
        let mut s = Serializer::new();
        v.serialize(&mut s);
        s.finish()
    }

    #[test]
    fn primitives() {
        assert_eq!(render(&5u32), "5");
        assert_eq!(render(&-3i64), "-3");
        assert_eq!(render(&true), "true");
        assert_eq!(render(&1.5f64), "1.5");
        assert_eq!(render(&2.0f64), "2.0");
        assert_eq!(render(&f64::NAN), "null");
        assert_eq!(render(&"a\"b".to_string()), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(render(&vec![1u64, 2]), "[1,2]");
        assert_eq!(render(&Option::<u64>::None), "null");
        assert_eq!(render(&Some(7u64)), "7");
        assert_eq!(render(&(1u64, 2.5f64)), "[1,2.5]");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1u64);
        assert_eq!(render(&m), "{\"k\":1}");
        let mut m2 = BTreeMap::new();
        m2.insert(3u64, "x".to_string());
        assert_eq!(render(&m2), "{\"3\":\"x\"}");
    }
}
