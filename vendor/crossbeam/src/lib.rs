//! Vendored minimal `crossbeam`: MPMC channels over `Mutex` + `Condvar`,
//! covering the surface the threaded runtime uses (`unbounded`, `bounded`,
//! cloneable senders/receivers, `recv`, `recv_timeout`).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still open but empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; sends
    /// block while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value back if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if st.items.len() >= cap => {
                        st = self.inner.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.items.push_back(value);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.senders -= 1;
            let wake = st.senders == 0;
            drop(st);
            if wake {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.items.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Returns a pending message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            if let Some(v) = st.items.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.receivers -= 1;
            let wake = st.receivers == 0;
            drop(st);
            if wake {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded(4);
            let h = thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
