//! Vendored `rand_chacha`: a real ChaCha8 block function behind the
//! vendored `rand` traits. Deterministic given a seed (the repo's core
//! invariant); the stream does not bit-match upstream `rand_chacha`, which
//! nothing in this workspace depends on.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CHACHA_CONSTANTS[0],
            CHACHA_CONSTANTS[1],
            CHACHA_CONSTANTS[2],
            CHACHA_CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: a column round and a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: grab two words with one bounds/refill check.
        if self.idx + 1 < 16 {
            let lo = u64::from(self.buf[self.idx]);
            let hi = u64::from(self.buf[self.idx + 1]);
            self.idx += 2;
            return (hi << 32) | lo;
        }
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        // 64_000 bits, expect ~32_000 set.
        assert!((30_000..34_000).contains(&ones), "got {ones}");
    }

    #[test]
    fn works_with_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let v = r.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
