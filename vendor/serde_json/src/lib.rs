//! Vendored minimal `serde_json`: serialization to JSON text over the
//! vendored `serde` shim. No deserialization (nothing in the workspace
//! parses JSON back into Rust values).

use std::fmt;

/// Serialization error. The vendored writer is infallible, so this is
/// never actually constructed; it exists for upstream API compatibility.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json (vendored) error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails (the `Result` mirrors the upstream signature).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = serde::Serializer::new();
    value.serialize(&mut s);
    Ok(s.finish())
}

/// Renders `value` as pretty-printed (2-space indented) JSON.
///
/// # Errors
///
/// Never fails (the `Result` mirrors the upstream signature).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = serde::Serializer::pretty();
    value.serialize(&mut s);
    Ok(s.finish())
}

#[cfg(test)]
mod tests {
    #[test]
    fn compact_and_pretty() {
        let v = vec![1u64, 2, 3];
        assert_eq!(super::to_string(&v).unwrap(), "[1,2,3]");
        let p = super::to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  1,"));
    }
}
