//! Vendored minimal `proptest`: deterministic random property testing with
//! the upstream macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, range/tuple strategies, `any`,
//! `collection::vec`, `option::of`, `prop_map`). No shrinking: a failing
//! case reports its inputs (every strategy value is `Debug`) so it can be
//! reproduced by eye; the RNG seed per test is a stable hash of the test's
//! module path and name, so failures reproduce across runs.

/// Strategy combinators and the [`Strategy`](strategy::Strategy) trait.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range_inclusive(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u16, u32, u64, usize, i32, i64, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Values with a canonical full-range strategy (see [`super::arbitrary::any`]).
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64_raw()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64_raw() as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64_raw() & 1 == 1
        }
    }

    /// The [`super::arbitrary::any`] strategy.
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` — the canonical full-range strategy for `T`.
pub mod arbitrary {
    use super::strategy::{Any, Arbitrary};
    use std::marker::PhantomData;

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug)]
    pub struct OptionStrategy<S>(S);

    /// Generates `None` half the time, `Some` of the inner strategy
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64_raw() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The runner: config, RNG and case outcome types.
pub mod test_runner {
    use rand::{Rng, RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::ops::{Range, RangeInclusive};

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's preconditions were not met (`prop_assume!`); it is
        /// skipped, not failed.
        Reject,
        /// An assertion failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration (the subset the workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per test.
        pub cases: u32,
        /// Unused (no shrinking); kept for upstream source compatibility.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    /// The per-test deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Seeds from a stable FNV-1a hash of `name` (so each test has its
        /// own reproducible stream).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(h))
        }

        /// The next raw 64 bits.
        pub fn next_u64_raw(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform sample from a half-open range.
        pub fn sample_range<T>(&mut self, r: Range<T>) -> T
        where
            Range<T>: rand::SampleRange<Output = T>,
        {
            self.0.gen_range(r)
        }

        /// Uniform sample from an inclusive range.
        pub fn sample_range_inclusive<T>(&mut self, r: RangeInclusive<T>) -> T
        where
            RangeInclusive<T>: rand::SampleRange<Output = T>,
        {
            self.0.gen_range(r)
        }
    }
}

/// The upstream-style prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests (upstream-compatible surface syntax).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* } => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            __case, msg, __inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[allow(unused_imports)]
use strategy::Strategy as _;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u64..10, f in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn option_of(o in crate::option::of(1u64..4)) {
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, .. ProptestConfig::default() })]

        #[test]
        fn config_applies(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64_raw(), b.next_u64_raw());
    }
}
